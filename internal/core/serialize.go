package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pardict/internal/naming"
	"pardict/internal/pram"
)

// Serialization of a preprocessed Dict: a compiled dictionary can be built
// once and shipped (the use case: large signature databases distributed to
// scanners). The format is a little-endian sequence of sections with a
// magic/version header and a length-prefixed layout; tables are stored as
// flat key/value arrays and rebuilt into sharded maps on load (in parallel).
//
// The format makes no cross-version promises beyond the embedded version
// byte: Load rejects unknown versions.

const (
	dictMagic   = 0x70644431 // "pdD1"
	dictVersion = 1
)

// ErrBadFormat reports a malformed or truncated serialized dictionary.
var ErrBadFormat = errors.New("core: bad serialized dictionary")

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Save writes the preprocessed dictionary to w and returns the byte count.
func (d *Dict) Save(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := d.save(bw); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func (d *Dict) save(w io.Writer) error {
	putU32 := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := putU32(dictMagic); err != nil {
		return err
	}
	if err := putU32(dictVersion); err != nil {
		return err
	}
	if err := putU32(uint32(d.maxLen)); err != nil {
		return err
	}
	if err := putU32(uint32(d.levels)); err != nil {
		return err
	}
	if err := putU32(uint32(d.nameCount)); err != nil {
		return err
	}

	// Patterns.
	if err := putU32(uint32(len(d.patterns))); err != nil {
		return err
	}
	for _, p := range d.patterns {
		if err := writeInt32s(w, p); err != nil {
			return err
		}
	}
	// Prefix names, aligned with patterns.
	for _, row := range d.pn {
		if err := writeInt32s(w, row); err != nil {
			return err
		}
	}
	// Flat name-indexed arrays.
	for _, arr := range [][]int32{d.lenOfName, d.repPat, d.patOfName, d.lp, d.nextShort, d.patNames} {
		if err := writeInt32s(w, arr); err != nil {
			return err
		}
	}
	// Tables. up[0] is always nil; store levels 1..levels-1 then down 0..levels-1.
	for k := 1; k < d.levels; k++ {
		if err := writeTable(w, d.up[k]); err != nil {
			return err
		}
	}
	for k := 0; k < d.levels; k++ {
		if err := writeTable(w, d.down[k]); err != nil {
			return err
		}
	}
	return nil
}

func writeInt32s(w io.Writer, xs []int32) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(xs))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, xs)
}

// tableView abstracts Table and Frozen for serialization.
type tableView interface {
	Len() int
	Range(func(k uint64, v int32) bool)
}

func writeTable(w io.Writer, t tableView) error {
	n := t.Len()
	if err := binary.Write(w, binary.LittleEndian, uint32(n)); err != nil {
		return err
	}
	keys := make([]uint64, 0, n)
	vals := make([]int32, 0, n)
	t.Range(func(k uint64, v int32) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	if err := binary.Write(w, binary.LittleEndian, keys); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, vals)
}

// Load reads a dictionary previously written by Save. Table reconstruction
// runs on c's pool.
func Load(c *pram.Ctx, r io.Reader) (*Dict, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if magic != dictMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadFormat, magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if version != dictVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	d := &Dict{}
	var maxLen, levels, nameCount, np uint32
	for _, p := range []*uint32{&maxLen, &levels, &nameCount, &np} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
		}
	}
	const limit = 1 << 31
	if maxLen > limit || levels > 64 || nameCount > limit || np > limit {
		return nil, fmt.Errorf("%w: implausible header", ErrBadFormat)
	}
	d.maxLen = int(maxLen)
	d.levels = int(levels)
	d.nameCount = int(nameCount)

	d.patterns = make([][]int32, np)
	for i := range d.patterns {
		p, err := readInt32s(br)
		if err != nil {
			return nil, err
		}
		d.patterns[i] = p
	}
	d.pn = make([][]int32, np)
	for i := range d.pn {
		row, err := readInt32s(br)
		if err != nil {
			return nil, err
		}
		if len(row) != len(d.patterns[i]) {
			return nil, fmt.Errorf("%w: pn row length mismatch", ErrBadFormat)
		}
		d.pn[i] = row
	}
	for _, dst := range []*[]int32{&d.lenOfName, &d.repPat, &d.patOfName, &d.lp, &d.nextShort, &d.patNames} {
		arr, err := readInt32s(br)
		if err != nil {
			return nil, err
		}
		*dst = arr
	}
	if len(d.lenOfName) != d.nameCount || len(d.lp) != d.nameCount {
		return nil, fmt.Errorf("%w: name array length mismatch", ErrBadFormat)
	}
	if len(d.nextShort) != int(np) || len(d.patNames) != int(np) {
		return nil, fmt.Errorf("%w: pattern array length mismatch", ErrBadFormat)
	}

	d.up = make([]*naming.Frozen, d.levels)
	d.down = make([]*naming.Frozen, d.levels)
	for k := 1; k < d.levels; k++ {
		t, err := readTable(c, br)
		if err != nil {
			return nil, err
		}
		d.up[k] = t
	}
	for k := 0; k < d.levels; k++ {
		t, err := readTable(c, br)
		if err != nil {
			return nil, err
		}
		d.down[k] = t
	}
	return d, nil
}

func readInt32s(r io.Reader) ([]int32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("%w: implausible array length %d", ErrBadFormat, n)
	}
	xs := make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, xs); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return xs, nil
}

func readTable(c *pram.Ctx, r io.Reader) (*naming.Frozen, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("%w: implausible table size %d", ErrBadFormat, n)
	}
	keys := make([]uint64, n)
	if err := binary.Read(r, binary.LittleEndian, keys); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	vals := make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	for _, v := range vals {
		if v < 0 {
			return nil, fmt.Errorf("%w: negative table value", ErrBadFormat)
		}
	}
	return naming.Freeze(c, naming.BuildTable(c, keys, vals)), nil
}
