package core

import (
	"bytes"
	"testing"

	"pardict/internal/workload"
)

func TestDictSaveLoadRoundTrip(t *testing.T) {
	pats := workload.Dictionary(23, 40, 1, 50, 5)
	c := ctx()
	d := mustDict(t, c, pats)
	var buf bytes.Buffer
	n, err := d.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	ld, err := Load(c, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ld.MaxLen() != d.MaxLen() || ld.Levels() != d.Levels() ||
		ld.NameCount() != d.NameCount() || ld.PatternCount() != d.PatternCount() {
		t.Fatal("metadata mismatch")
	}
	text := workload.PlantedText(24, 5000, 5, pats, 40)
	r1 := d.Match(c, text)
	r2 := ld.Match(c, text)
	for j := range text {
		if r1.Pat[j] != r2.Pat[j] || r1.Len[j] != r2.Len[j] || r1.Name[j] != r2.Name[j] {
			t.Fatalf("pos %d: (%d,%d,%d) vs (%d,%d,%d)", j,
				r1.Pat[j], r1.Len[j], r1.Name[j], r2.Pat[j], r2.Len[j], r2.Name[j])
		}
	}
	// Prefix names survive too (used by dependent packages).
	for i := range pats {
		for l := 1; l <= len(pats[i]); l++ {
			if d.PrefixName(i, l) != ld.PrefixName(i, l) {
				t.Fatalf("prefix name (%d,%d) mismatch", i, l)
			}
		}
	}
}

func TestDictLoadRejectsCorruption(t *testing.T) {
	pats := workload.Dictionary(25, 8, 2, 10, 3)
	c := ctx()
	d := mustDict(t, c, pats)
	var buf bytes.Buffer
	if _, err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at many points must all fail cleanly.
	for cut := 0; cut < len(good); cut += 1 + len(good)/37 {
		if _, err := Load(c, bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := Load(c, bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Implausible header (huge levels).
	bad2 := append([]byte(nil), good...)
	bad2[12] = 0xFF
	if _, err := Load(c, bytes.NewReader(bad2)); err == nil {
		t.Fatal("accepted implausible header")
	}
}

func TestDictSaveLoadEmpty(t *testing.T) {
	c := ctx()
	d := mustDict(t, c, nil)
	var buf bytes.Buffer
	if _, err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(c, &buf)
	if err != nil {
		t.Fatal(err)
	}
	r := ld.Match(c, enc("abc"))
	for j := range r.Pat {
		if r.Pat[j] != -1 {
			t.Fatal("empty dict matched after load")
		}
	}
}
