package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pardict/internal/naive"
	"pardict/internal/naming"
	"pardict/internal/pram"
)

// TestQuickMatchEqualsNaive is the main property: on arbitrary generated
// inputs the engine output equals the brute-force oracle.
func TestQuickMatchEqualsNaive(t *testing.T) {
	c := ctx()
	f := func(patSeed, textSeed int64, npRaw, sigmaRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(patSeed))
		sigma := 1 + int(sigmaRaw%4)
		np := 1 + int(npRaw%5)
		seen := map[string]bool{}
		var pats [][]int32
		for attempts := 0; len(pats) < np && attempts < 100; attempts++ {
			l := 1 + rng.Intn(15)
			p := make([]int32, l)
			key := make([]byte, l)
			for i := range p {
				p[i] = int32(rng.Intn(sigma))
				key[i] = byte(p[i])
			}
			if seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			pats = append(pats, p)
		}
		trng := rand.New(rand.NewSource(textSeed))
		text := make([]int32, int(nRaw%512))
		for i := range text {
			text[i] = int32(trng.Intn(sigma))
		}
		d, err := Preprocess(c, pats)
		if err != nil {
			return false
		}
		r := d.Match(c, text)
		wantLen, _ := naive.LongestPrefix(pats, text)
		wantPat := naive.LongestPattern(pats, text)
		for j := range text {
			if r.Len[j] != wantLen[j] || r.Pat[j] != wantPat[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixNameBijection: prefix names are equal iff (content, length) are
// equal — the §3.3 defining property — across every pair of positions.
func TestPrefixNameBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		sigma := 1 + rng.Intn(3)
		np := 2 + rng.Intn(5)
		seen := map[string]bool{}
		var pats [][]int32
		for attempts := 0; len(pats) < np && attempts < 200; attempts++ {
			l := 1 + rng.Intn(12)
			p := make([]int32, l)
			key := make([]byte, l)
			for i := range p {
				p[i] = int32(rng.Intn(sigma))
				key[i] = byte(p[i])
			}
			if seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			pats = append(pats, p)
		}
		c := ctx()
		d := mustDict(t, c, pats)
		type occ struct{ i, l int }
		byName := map[int32]occ{}
		for i, p := range pats {
			for l := 1; l <= len(p); l++ {
				name := d.PrefixName(i, l)
				if int(d.NameLen(name)) != l {
					t.Fatalf("NameLen(%d) = %d, want %d", name, d.NameLen(name), l)
				}
				if prev, ok := byName[name]; ok {
					if prev.l != l {
						t.Fatalf("name %d used for lengths %d and %d", name, prev.l, l)
					}
					for x := 0; x < l; x++ {
						if pats[prev.i][x] != p[x] {
							t.Fatalf("name %d shared by different contents", name)
						}
					}
				} else {
					byName[name] = occ{i, l}
				}
			}
		}
		// Conversely: equal contents must share names.
		byContent := map[string]int32{}
		for i, p := range pats {
			key := make([]byte, 0, 2*len(p))
			for l := 1; l <= len(p); l++ {
				key = append(key, byte(p[l-1]), byte(p[l-1]>>8))
				name := d.PrefixName(i, l)
				if prev, ok := byContent[string(key)]; ok && prev != name {
					t.Fatalf("content %v got names %d and %d", key, prev, name)
				}
				byContent[string(key)] = name
			}
		}
	}
}

// TestMatchPreservation: the shrink-and-spawn reduction is match-preserving
// (§3.1). We check the observable consequence level by level: the level-k
// text symbol arrays produced by SpawnText assign equal names exactly to
// equal dictionary-occurring substrings.
func TestMatchPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		sigma := 1 + rng.Intn(3)
		p := make([]int32, 16+rng.Intn(17))
		for i := range p {
			p[i] = int32(rng.Intn(sigma))
		}
		c := ctx()
		d := mustDict(t, c, [][]int32{p})
		text := make([]int32, 200)
		for i := range text {
			text[i] = int32(rng.Intn(sigma))
		}
		copy(text[50:], p) // guarantee dictionary-aligned content appears
		syms := d.SpawnText(c, text)
		for k := 1; k < d.Levels(); k++ {
			w := 1 << uint(k)
			for a := 0; a+w <= len(text); a++ {
				for b := a + 1; b+w <= len(text); b++ {
					na, nb := syms[k][a], syms[k][b]
					if na == naming.None || nb == naming.None {
						continue // not dictionary-aligned content: exempt
					}
					eq := true
					for x := 0; x < w; x++ {
						if text[a+x] != text[b+x] {
							eq = false
							break
						}
					}
					if eq != (na == nb) {
						t.Fatalf("level %d: positions %d,%d content-eq=%v name-eq=%v",
							k, a, b, eq, na == nb)
					}
				}
			}
		}
	}
}

// TestLargeSymbolValues: symbols near the int32 encoding limit must work
// (the alphabet is only assumed polynomial in n and M, §2).
func TestLargeSymbolValues(t *testing.T) {
	const big = 1 << 29
	pats := [][]int32{{big, big + 1}, {big + 1, big}, {big + 2}}
	text := []int32{big, big + 1, big, big + 2, big + 1, big}
	checkAgainstNaive(t, pats, text)
}

func TestSinglePatternIsWholeText(t *testing.T) {
	p := enc("exactmatch")
	c := ctx()
	d := mustDict(t, c, [][]int32{p})
	r := d.Match(c, p)
	if r.Pat[0] != 0 || r.Len[0] != int32(len(p)) {
		t.Fatalf("full-text match failed: pat=%d len=%d", r.Pat[0], r.Len[0])
	}
	for j := 1; j < len(p); j++ {
		if r.Pat[j] != -1 {
			t.Fatalf("spurious match at %d", j)
		}
	}
}

func TestMatchAtTextBoundary(t *testing.T) {
	// Pattern ends exactly at the last text position, for every length class
	// around powers of two (exercises the bounds checks in every level).
	for _, l := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33} {
		p := make([]int32, l)
		for i := range p {
			p[i] = int32(i%3 + 1)
		}
		text := append(make([]int32, 7), p...) // zeros then the pattern
		c := ctx()
		d := mustDict(t, c, [][]int32{p})
		r := d.Match(c, text)
		if r.Pat[7] != 0 {
			t.Fatalf("l=%d: no match at boundary", l)
		}
		// One symbol short: must not match.
		short := text[:len(text)-1]
		r2 := d.Match(c, short)
		if len(short) > 7 && r2.Pat[7] != -1 {
			t.Fatalf("l=%d: matched truncated text", l)
		}
	}
}

// TestWorkDepthBounds asserts the Theorem 1/3 counter shapes directly.
func TestWorkDepthBounds(t *testing.T) {
	pats := [][]int32{}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 32; i++ {
		l := 1 + rng.Intn(255)
		p := make([]int32, l)
		for k := range p {
			p[k] = int32(rng.Intn(6))
		}
		pats = append(pats, p)
	}
	c := pram.New(0)
	d, err := Preprocess(c, pats)
	if err != nil {
		t.Skip("rare duplicate; acceptable")
	}
	n := 1 << 15
	text := make([]int32, n)
	for i := range text {
		text[i] = int32(rng.Intn(6))
	}
	c.ResetStats()
	d.Match(c, text)
	levels := int64(d.Levels())
	if w := c.Work(); w > int64(n)*(2*levels+4) || w < int64(n)*levels {
		t.Fatalf("match work %d outside [n·levels, n·(2·levels+4)] (levels=%d)", w, levels)
	}
	if dep := c.Depth(); dep > 4*levels+8 {
		t.Fatalf("match depth %d > 4·levels+8 (levels=%d)", dep, levels)
	}
}
