// Package dict3d extends the §5 two-dimensional dictionary-matching
// algorithm to three dimensions, the d = 3 instance of the paper's
// "extensions to d-dimensional dictionary matching for a fixed d are
// straightforward" claim: cube patterns of (possibly) different sides are
// matched in O(log m) depth and O(n·log m) matching work.
//
// The construction mirrors package dict2d:
//
//   - S'_k = S_k plus six stripped variants, one per nonempty proper subset
//     of the axes (strip the first slice along each axis in the subset,
//     truncated back to a cube). A candidate cube of odd side 2i+1 is
//     covered by the seven side-2i sub-cubes at offsets v ∈ {0,1}³ \ {111}
//     — each a prefix of the corresponding variant — plus the far-corner
//     cell, generalizing the ⟨n_e, n_r, n_c, corner⟩ namestamp of §5 Step 4b.
//     With 7 pieces per element the per-level set size is 7M/8 of the
//     previous level: the geometric decay that keeps preprocessing at O(M).
//   - Unified cube-prefix names δ3 (x-chain, then y-chain over row names,
//     then z-chain over slice names — Lemma 1 applied twice) make the
//     cross-variant case analysis plain table lookups.
//   - Shrinking names disjoint 2×2×2 blocks; the spawned texts are the
//     stride-2^k subsamplings of the per-level block grid.
package dict3d

import (
	"errors"
	"fmt"

	"pardict/internal/naming"
	"pardict/internal/pram"
)

// Errors reported by Preprocess and Match.
var (
	ErrNotCube      = errors.New("dict3d: patterns must be cubes")
	ErrEmptyPattern = errors.New("dict3d: empty pattern")
	ErrDuplicate    = errors.New("dict3d: duplicate pattern")
	ErrRagged       = errors.New("dict3d: text must be a rectangular box")
)

// variants enumerates the six proper nonempty axis subsets (vz, vy, vx),
// in the fixed order the candidate tuples are staged in.
var variants = [6][3]int{
	{0, 0, 1}, {0, 1, 0}, {0, 1, 1}, {1, 0, 0}, {1, 0, 1}, {1, 1, 0},
}

// Dict is a preprocessed 3-D dictionary. Immutable after Preprocess; safe
// for concurrent Match calls.
type Dict struct {
	levels  []*level
	lpPat   []int32
	maxSide int
	np      int
}

type level struct {
	// Block naming: 2×2×2 block -> level-(k+1) symbol, staged as x-pairs,
	// y-pairs of x-pair names, z-pairs of those.
	pairX, pairY, pairZ *naming.Frozen

	sideOf []int32
	trunc  *naming.Frozen
	lpS    []int32

	// Candidate staging: 7 chained tables combine the seven piece names,
	// the last combining with the corner symbol.
	cand [7]*naming.Frozen

	mapUp []int32

	pendingMap []*cube
	pendingSrc []*cube
}

// cube is one element of S'_k with δ3 prefix names per side.
type cube struct {
	cells [][][]int32 // side × side × side, cells[z][y][x]
	pn    []int32     // pn[s-1] = δ3 name of the side-s prefix
	isS   bool
	pat   int32
}

func (e *cube) side() int { return len(e.cells) }

// MaxSide reports m, the largest pattern side.
func (d *Dict) MaxSide() int { return d.maxSide }

// PatternCount reports the number of patterns.
func (d *Dict) PatternCount() int { return d.np }

// Preprocess builds the dictionary from cube patterns in O(M) work.
func Preprocess(c *pram.Ctx, patterns [][][][]int32) (*Dict, error) {
	d := &Dict{np: len(patterns)}
	elems := make([]*cube, 0, len(patterns))
	seen := map[string]int{}
	for pi, p := range patterns {
		side := len(p)
		if side == 0 {
			return nil, ErrEmptyPattern
		}
		for _, slice := range p {
			if len(slice) != side {
				return nil, ErrNotCube
			}
			for _, row := range slice {
				if len(row) != side {
					return nil, ErrNotCube
				}
			}
		}
		k := cubeKey(p)
		if prev, ok := seen[k]; ok {
			return nil, fmt.Errorf("%w: patterns %d and %d", ErrDuplicate, prev, pi)
		}
		seen[k] = pi
		if side > d.maxSide {
			d.maxSide = side
		}
		elems = append(elems, &cube{cells: p, isS: true, pat: int32(pi)})
	}
	if d.maxSide == 0 {
		return d, nil
	}

	var prev *level
	for len(elems) > 0 {
		lv, next := buildLevel(c, elems)
		d.levels = append(d.levels, lv)
		if prev != nil {
			fillMapUp(c, prev)
		}
		if len(d.levels) == 1 {
			d.buildPatternChain(c, lv, elems)
		}
		elems = next
		prev = lv
	}
	if prev != nil {
		prev.pendingMap, prev.pendingSrc = nil, nil
	}
	return d, nil
}

func cubeKey(p [][][]int32) string {
	b := make([]byte, 0, 4*len(p)*len(p)*len(p))
	for _, slice := range p {
		for _, row := range slice {
			for _, v := range row {
				b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
		}
	}
	return string(b)
}

func buildLevel(c *pram.Ctx, sElems []*cube) (*level, []*cube) {
	lv := &level{}

	// S' = S plus the six stripped variants of each big-enough element.
	all := make([]*cube, 0, 7*len(sElems))
	all = append(all, sElems...)
	for _, e := range sElems {
		side := e.side()
		if side < 2 {
			continue
		}
		for _, v := range variants {
			t := side - 1
			cells := make([][][]int32, t)
			for z := 0; z < t; z++ {
				cells[z] = make([][]int32, t)
				for y := 0; y < t; y++ {
					cells[z][y] = e.cells[z+v[0]][y+v[1]][v[2] : v[2]+t]
				}
			}
			all = append(all, &cube{cells: cells, pat: -1})
		}
	}

	namePrefixes(c, lv, all)
	buildTrunc(c, lv, all)
	buildLpS(c, lv, all)
	buildCandidates(c, lv, sElems, all)
	next := shrink(c, lv, all)
	return lv, next
}

// namePrefixes assigns unified δ3 cube-prefix names: x-chains name row
// prefixes, y-chains over row names name rectangle prefixes per slice, and
// z-chains over slice-rectangle names name cube prefixes (Lemma 1 twice).
func namePrefixes(c *pram.Ctx, lv *level, all []*cube) {
	rowTab := naming.NewTable(c)
	rectTab := naming.NewTable(c)
	cubeTab := naming.NewTable(c)
	var rowCtr, rectCtr, cubeCtr int32
	var work int64
	for _, e := range all {
		side := e.side()
		// rowName[z][y][x] = name of e[z][y][0..x].
		rowName := make([][][]int32, side)
		for z := 0; z < side; z++ {
			rowName[z] = make([][]int32, side)
			for y := 0; y < side; y++ {
				rowName[z][y] = make([]int32, side)
				prev := naming.Empty
				for x := 0; x < side; x++ {
					got, ins := rowTab.PutIfAbsent(naming.EncodePair(prev, e.cells[z][y][x]), rowCtr)
					if ins {
						rowCtr++
					}
					rowName[z][y][x] = got
					prev = got
				}
			}
		}
		// rectName[z][s] = name of slice z's s×s corner rectangle.
		rectName := make([][]int32, side)
		for z := 0; z < side; z++ {
			rectName[z] = make([]int32, side+1)
			for s := 1; s <= side; s++ {
				prev := naming.Empty
				for y := 0; y < s; y++ {
					got, ins := rectTab.PutIfAbsent(naming.EncodePair(prev, rowName[z][y][s-1]), rectCtr)
					if ins {
						rectCtr++
					}
					prev = got
				}
				rectName[z][s] = prev
			}
		}
		// δ3 per side: z-chain over rectName[z][s].
		e.pn = make([]int32, side)
		for s := 1; s <= side; s++ {
			prev := naming.Empty
			for z := 0; z < s; z++ {
				got, ins := cubeTab.PutIfAbsent(naming.EncodePair(prev, rectName[z][s]), cubeCtr)
				if ins {
					cubeCtr++
					lv.sideOf = append(lv.sideOf, 0)
				}
				prev = got
			}
			e.pn[s-1] = prev
			lv.sideOf[prev] = int32(s)
		}
		work += int64(3 * side * side * side)
	}
	c.AddWork(work)
	c.AddDepth(int64(log2i(maxSideOf(all)) + 1))
}

func buildTrunc(c *pram.Ctx, lv *level, all []*cube) {
	tbl := naming.NewTable(c)
	var work int64
	for _, e := range all {
		side := e.side()
		for b := 2; b <= side; b++ {
			for a := 1; a < b; a++ {
				tbl.PutIfAbsent(naming.EncodePair(e.pn[b-1], int32(a)), e.pn[a-1])
			}
		}
		work += int64(side * side)
	}
	lv.trunc = naming.Freeze(c, tbl)
	c.AddWork(work)
	c.AddDepth(1)
}

func buildLpS(c *pram.Ctx, lv *level, all []*cube) {
	isS := make([]bool, len(lv.sideOf))
	for _, e := range all {
		if !e.isS {
			continue
		}
		for _, name := range e.pn {
			isS[name] = true
		}
	}
	lv.lpS = make([]int32, len(lv.sideOf))
	for i := range lv.lpS {
		lv.lpS[i] = naming.Empty
	}
	for _, e := range all {
		carry := naming.Empty
		for _, name := range e.pn {
			if isS[name] {
				carry = name
			}
			lv.lpS[name] = carry
		}
	}
	c.AddWork(int64(2 * len(lv.sideOf)))
	c.AddDepth(int64(log2i(maxSideOf(all)) + 1))
}

// buildCandidates stages, per S element and odd side 2i+1, the namestamp of
// the seven side-2i piece names plus the far-corner symbol.
func buildCandidates(c *pram.Ctx, lv *level, sElems, all []*cube) {
	vi := len(sElems)
	var tabs [7]*naming.Table
	for i := range tabs {
		tabs[i] = naming.NewTable(c)
	}
	var counters [6]int32
	var work int64
	for _, e := range sElems {
		side := e.side()
		var vars [6]*cube
		if side >= 2 {
			for t := 0; t < 6; t++ {
				vars[t] = all[vi]
				vi++
			}
		}
		for l := 1; l <= side; l += 2 {
			twoI := l - 1
			// Piece names in fixed order: v=(0,0,0) is e itself, then the
			// six variants.
			var pieces [7]int32
			if twoI > 0 {
				pieces[0] = e.pn[twoI-1]
				for t := 0; t < 6; t++ {
					pieces[t+1] = vars[t].pn[twoI-1]
				}
			} else {
				for t := range pieces {
					pieces[t] = naming.Empty
				}
			}
			corner := e.cells[l-1][l-1][l-1]
			// Stage: s1=(p0,p1), s2=(s1,p2), ..., s6=(s5,p6),
			// final cand[6]: (s6, corner) -> δ3 name of the (2i+1)-prefix.
			cur := pieces[0]
			for t := 0; t < 6; t++ {
				got, ins := tabs[t].PutIfAbsent(naming.EncodePair(cur, pieces[t+1]), counters[t])
				if ins {
					counters[t]++
				}
				cur = got
			}
			tabs[6].PutIfAbsent(naming.EncodePair(cur, corner), e.pn[l-1])
			work += 7
		}
	}
	for i := range tabs {
		lv.cand[i] = naming.Freeze(c, tabs[i])
	}
	c.AddWork(work)
	c.AddDepth(1)
}

// shrink names disjoint 2×2×2 blocks of every S' element and returns the
// shrunk S_{k+1} elements, deferring mapUp.
func shrink(c *pram.Ctx, lv *level, all []*cube) []*cube {
	pairX, pairY, pairZ := naming.NewTable(c), naming.NewTable(c), naming.NewTable(c)
	var xCtr, yCtr, zCtr int32
	var next []*cube
	var work int64
	for _, e := range all {
		side := e.side()
		h := side / 2
		if h == 0 {
			continue
		}
		sh := make([][][]int32, h)
		for a := 0; a < h; a++ {
			sh[a] = make([][]int32, h)
			for b := 0; b < h; b++ {
				sh[a][b] = make([]int32, h)
				for g := 0; g < h; g++ {
					sh[a][b][g] = blockName(pairX, pairY, pairZ, &xCtr, &yCtr, &zCtr, e.cells, 2*a, 2*b, 2*g)
				}
			}
		}
		next = append(next, &cube{cells: sh, isS: true, pat: -1})
		work += int64(side * side * side)
	}
	lv.pairX = naming.Freeze(c, pairX)
	lv.pairY = naming.Freeze(c, pairY)
	lv.pairZ = naming.Freeze(c, pairZ)
	c.AddWork(work)
	c.AddDepth(1)

	lv.pendingMap = next
	lv.pendingSrc = withSideAtLeast(all, 2)
	return next
}

// blockName names the 2×2×2 block cornered at (z,y,x) of cells via the
// three-stage pair tables.
func blockName(pairX, pairY, pairZ *naming.Table, xCtr, yCtr, zCtr *int32, cells [][][]int32, z, y, x int) int32 {
	pair := func(tab *naming.Table, ctr *int32, a, b int32) int32 {
		got, ins := tab.PutIfAbsent(naming.EncodePair(a, b), *ctr)
		if ins {
			*ctr++
		}
		return got
	}
	x00 := pair(pairX, xCtr, cells[z][y][x], cells[z][y][x+1])
	x01 := pair(pairX, xCtr, cells[z][y+1][x], cells[z][y+1][x+1])
	x10 := pair(pairX, xCtr, cells[z+1][y][x], cells[z+1][y][x+1])
	x11 := pair(pairX, xCtr, cells[z+1][y+1][x], cells[z+1][y+1][x+1])
	y0 := pair(pairY, yCtr, x00, x01)
	y1 := pair(pairY, yCtr, x10, x11)
	return pair(pairZ, zCtr, y0, y1)
}

func withSideAtLeast(all []*cube, s int) []*cube {
	out := make([]*cube, 0, len(all))
	for _, e := range all {
		if e.side() >= s {
			out = append(out, e)
		}
	}
	return out
}

func fillMapUp(c *pram.Ctx, lv *level) {
	maxName := int32(-1)
	for _, e := range lv.pendingMap {
		for _, name := range e.pn {
			if name > maxName {
				maxName = name
			}
		}
	}
	lv.mapUp = make([]int32, maxName+1)
	var work int64
	for i, e := range lv.pendingMap {
		src := lv.pendingSrc[i]
		for s := 1; s <= e.side(); s++ {
			lv.mapUp[e.pn[s-1]] = src.pn[2*s-1]
		}
		work += int64(e.side())
	}
	c.AddWork(work)
	c.AddDepth(1)
	lv.pendingMap, lv.pendingSrc = nil, nil
}

func (d *Dict) buildPatternChain(c *pram.Ctx, lv *level, elems []*cube) {
	patAt := make([]int32, len(lv.sideOf))
	for i := range patAt {
		patAt[i] = -1
	}
	for _, e := range elems {
		if e.pat >= 0 {
			patAt[e.pn[e.side()-1]] = e.pat
		}
	}
	d.lpPat = make([]int32, len(lv.sideOf))
	for i := range d.lpPat {
		d.lpPat[i] = -1
	}
	for _, e := range elems {
		carry := int32(-1)
		for _, name := range e.pn {
			if p := patAt[name]; p >= 0 {
				carry = p
			}
			d.lpPat[name] = carry
		}
	}
	c.AddWork(int64(2 * len(lv.sideOf)))
	c.AddDepth(int64(log2i(d.maxSide) + 1))
}

func maxSideOf(all []*cube) int {
	m := 1
	for _, e := range all {
		if e.side() > m {
			m = e.side()
		}
	}
	return m
}

func log2i(x int) int {
	b := 0
	for 1<<b < x {
		b++
	}
	return b
}
