package dict3d

import (
	"errors"
	"math/rand"
	"testing"

	"pardict/internal/naive"
	"pardict/internal/pram"
)

func ctx() *pram.Ctx { return pram.New(0) }

func randCube(rng *rand.Rand, s, sigma int, shift int32) [][][]int32 {
	p := make([][][]int32, s)
	for z := range p {
		p[z] = make([][]int32, s)
		for y := range p[z] {
			p[z][y] = make([]int32, s)
			for x := range p[z][y] {
				p[z][y][x] = int32(rng.Intn(sigma)) + shift
			}
		}
	}
	return p
}

func check(t *testing.T, pats [][][][]int32, text [][][]int32) {
	t.Helper()
	c := ctx()
	d, err := Preprocess(c, pats)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	r, err := d.Match(c, text)
	if err != nil {
		t.Fatal(err)
	}
	wantSide, _ := naive.LongestCubePrefix3D(pats, text)
	wantPat := naive.LargestFullMatch3D(pats, text)
	for z := range text {
		for y := range text[z] {
			for x := range text[z][y] {
				if r.Side[z][y][x] != wantSide[z][y][x] {
					t.Fatalf("cell (%d,%d,%d): side %d want %d",
						z, y, x, r.Side[z][y][x], wantSide[z][y][x])
				}
				if r.Pat[z][y][x] != wantPat[z][y][x] {
					t.Fatalf("cell (%d,%d,%d): pat %d want %d",
						z, y, x, r.Pat[z][y][x], wantPat[z][y][x])
				}
			}
		}
	}
}

func TestSingleCell(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pats := [][][][]int32{{{{7}}}}
	text := randCube(rng, 4, 8, 0)
	text[1][2][3] = 7
	check(t, pats, text)
}

func TestSide2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randCube(rng, 2, 2, 10)
	text := randCube(rng, 6, 2, 0)
	plant(text, p, 1, 2, 3)
	check(t, [][][][]int32{p}, text)
}

func plant(text, p [][][]int32, z, y, x int) {
	for a := range p {
		for b := range p[a] {
			copy(text[z+a][y+b][x:], p[a][b])
		}
	}
}

func TestOddSides(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range []int{3, 5, 7} {
		p := randCube(rng, s, 3, 10)
		text := randCube(rng, 2*s+2, 3, 0)
		plant(text, p, 1, s-1, 2)
		check(t, [][][][]int32{p}, text)
	}
}

func TestMixedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pats := [][][][]int32{
		randCube(rng, 1, 2, 0),
		randCube(rng, 2, 2, 0),
		randCube(rng, 4, 2, 0),
		randCube(rng, 5, 2, 0),
	}
	text := randCube(rng, 12, 2, 0)
	plant(text, pats[3], 2, 3, 4)
	plant(text, pats[2], 7, 0, 1)
	check(t, pats, text)
}

func TestNestedCubes(t *testing.T) {
	// Nested all-zero cubes: sizes 1..5, every position matching several.
	var pats [][][][]int32
	for s := 1; s <= 5; s++ {
		p := make([][][]int32, s)
		for z := range p {
			p[z] = make([][]int32, s)
			for y := range p[z] {
				p[z][y] = make([]int32, s)
			}
		}
		pats = append(pats, p)
	}
	text := make([][][]int32, 8)
	for z := range text {
		text[z] = make([][]int32, 8)
		for y := range text[z] {
			text[z][y] = make([]int32, 8)
		}
	}
	check(t, pats, text)
}

func TestRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		sigma := 1 + rng.Intn(2)
		np := 1 + rng.Intn(3)
		seen := map[string]bool{}
		var pats [][][][]int32
		for attempts := 0; len(pats) < np && attempts < 50; attempts++ {
			p := randCube(rng, 1+rng.Intn(4), sigma, 0)
			k := cubeKey(p)
			if seen[k] {
				continue
			}
			seen[k] = true
			pats = append(pats, p)
		}
		text := randCube(rng, 3+rng.Intn(7), sigma, 0)
		check(t, pats, text)
	}
}

func TestPlantedLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range []int{6, 9, 12} {
		p := randCube(rng, s, 3, 10) // disjoint alphabet: only the plant matches
		text := randCube(rng, 2*s+1, 3, 0)
		plant(text, p, 2, 3, s-2)
		c := ctx()
		d, err := Preprocess(c, [][][][]int32{p})
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Match(c, text)
		if err != nil {
			t.Fatal(err)
		}
		for z := range text {
			for y := range text[z] {
				for x := range text[z][y] {
					want := int32(-1)
					if z == 2 && y == 3 && x == s-2 {
						want = 0
					}
					if r.Pat[z][y][x] != want {
						t.Fatalf("s=%d cell (%d,%d,%d): got %d want %d",
							s, z, y, x, r.Pat[z][y][x], want)
					}
				}
			}
		}
	}
}

func TestErrors(t *testing.T) {
	c := ctx()
	if _, err := Preprocess(c, [][][][]int32{{}}); err != ErrEmptyPattern {
		t.Fatalf("err = %v", err)
	}
	ragged := [][][]int32{{{1, 2}, {3}}, {{1, 2}, {3, 4}}}
	if _, err := Preprocess(c, [][][][]int32{ragged}); err != ErrNotCube {
		t.Fatalf("err = %v", err)
	}
	p := [][][]int32{{{1}}}
	if _, err := Preprocess(c, [][][][]int32{p, p}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	d, err := Preprocess(c, [][][][]int32{p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Match(c, ragged); err != ErrRagged {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyDictAndText(t *testing.T) {
	c := ctx()
	d, err := Preprocess(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	r, err := d.Match(c, randCube(rng, 3, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	for z := range r.Pat {
		for y := range r.Pat[z] {
			for x := range r.Pat[z][y] {
				if r.Pat[z][y][x] != -1 {
					t.Fatal("empty dict matched")
				}
			}
		}
	}
	if _, err := d.Match(c, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixOnlyMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randCube(rng, 4, 2, 0)
	// Text holds only the 2×2×2 corner of the pattern.
	text := randCube(rng, 2, 2, 5)
	for z := 0; z < 2; z++ {
		for y := 0; y < 2; y++ {
			copy(text[z][y], p[z][y][:2])
		}
	}
	c := ctx()
	d, err := Preprocess(c, [][][][]int32{p})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Match(c, text)
	if err != nil {
		t.Fatal(err)
	}
	if r.Side[0][0][0] != 2 || r.Pat[0][0][0] != -1 {
		t.Fatalf("side=%d pat=%d, want side=2 pat=-1", r.Side[0][0][0], r.Pat[0][0][0])
	}
}

func TestWorkShape(t *testing.T) {
	// Matching work must be O(cells · levels).
	rng := rand.New(rand.NewSource(9))
	pats := [][][][]int32{randCube(rng, 8, 2, 0), randCube(rng, 16, 2, 0)}
	text := randCube(rng, 40, 2, 0)
	c := pram.New(0)
	d, err := Preprocess(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if _, err := d.Match(c, text); err != nil {
		t.Fatal(err)
	}
	cells := int64(40 * 40 * 40)
	levels := int64(len(d.levels))
	if w := c.Work(); w > cells*(2*levels+4) {
		t.Fatalf("match work %d exceeds cells·(2·levels+4) = %d", w, cells*(2*levels+4))
	}
}

func TestMetadataAccessors(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(99))
	d, err := Preprocess(c, [][][][]int32{randCube(rng, 3, 2, 0), randCube(rng, 1, 2, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxSide() != 3 || d.PatternCount() != 2 {
		t.Fatalf("MaxSide=%d PatternCount=%d", d.MaxSide(), d.PatternCount())
	}
}
