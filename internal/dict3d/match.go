package dict3d

import (
	"pardict/internal/naming"
	"pardict/internal/pram"
)

// Result holds the per-cell output of 3-D dictionary matching.
type Result struct {
	// Side[z][y][x] is the side of the largest dictionary cube-prefix whose
	// corner matches at (z, y, x).
	Side [][][]int32
	// Name[z][y][x] is that prefix's unified name (naming.Empty at side 0).
	Name [][][]int32
	// Pat[z][y][x] is the largest full pattern matching there, or -1.
	Pat [][][]int32
}

// Match runs 3-D dictionary matching on a rectangular box text
// (text[z][y][x]; all slices and rows must agree in size).
func (d *Dict) Match(c *pram.Ctx, text [][][]int32) (*Result, error) {
	zd := len(text)
	yd, xd := 0, 0
	if zd > 0 {
		yd = len(text[0])
		if yd > 0 {
			xd = len(text[0][0])
		}
		for _, slice := range text {
			if len(slice) != yd {
				return nil, ErrRagged
			}
			for _, row := range slice {
				if len(row) != xd {
					return nil, ErrRagged
				}
			}
		}
	}
	r := &Result{
		Side: makeBox(c, zd, yd, xd, 0),
		Name: makeBox(c, zd, yd, xd, naming.Empty),
		Pat:  makeBox(c, zd, yd, xd, -1),
	}
	if zd == 0 || yd == 0 || xd == 0 || d.maxSide == 0 {
		return r, nil
	}

	grids := d.spawnGrids(c, text, zd, yd, xd)
	d.unwind(c, grids, r, zd, yd, xd)

	c.For(zd, func(z int) {
		for y := 0; y < yd; y++ {
			for x := 0; x < xd; x++ {
				if name := r.Name[z][y][x]; name != naming.Empty {
					r.Pat[z][y][x] = d.lpPat[name]
				}
			}
		}
	})
	c.AddWork(boxWork(zd, yd, xd))
	return r, nil
}

func boxWork(zd, yd, xd int) int64 {
	return int64(zd) * (int64(yd)*int64(xd) - 1)
}

func makeBox(c *pram.Ctx, zd, yd, xd int, v int32) [][][]int32 {
	b := make([][][]int32, zd)
	c.For(zd, func(z int) {
		b[z] = make([][]int32, yd)
		for y := range b[z] {
			b[z][y] = make([]int32, xd)
			for x := range b[z][y] {
				b[z][y][x] = v
			}
		}
	})
	return b
}

// spawnGrids computes the level-k block-name grid at every cell.
func (d *Dict) spawnGrids(c *pram.Ctx, text [][][]int32, zd, yd, xd int) [][][][]int32 {
	grids := make([][][][]int32, len(d.levels))
	grids[0] = text
	for k := 1; k < len(d.levels); k++ {
		if c.Canceled() {
			break
		}
		lv := d.levels[k-1]
		g := 1 << uint(k-1)
		prev := grids[k-1]
		cur := make([][][]int32, zd)
		c.For(zd, func(z int) {
			cur[z] = make([][]int32, yd)
			for y := 0; y < yd; y++ {
				cur[z][y] = make([]int32, xd)
				for x := 0; x < xd; x++ {
					cur[z][y][x] = octName(lv, prev, z, y, x, g, zd, yd, xd)
				}
			}
		})
		c.AddWork(boxWork(zd, yd, xd))
		grids[k] = cur
	}
	return grids
}

// octName composes the level-(k+1) symbol (2×2×2 block) at (z,y,x) from
// level-k symbols at stride g.
func octName(lv *level, prev [][][]int32, z, y, x, g, zd, yd, xd int) int32 {
	if z+g >= zd || y+g >= yd || x+g >= xd {
		return naming.None
	}
	pairIn := func(tab *naming.Frozen, a, b int32) int32 {
		if a == naming.None || b == naming.None {
			return naming.None
		}
		return tab.Lookup(naming.EncodePair(a, b))
	}
	x00 := pairIn(lv.pairX, prev[z][y][x], prev[z][y][x+g])
	x01 := pairIn(lv.pairX, prev[z][y+g][x], prev[z][y+g][x+g])
	x10 := pairIn(lv.pairX, prev[z+g][y][x], prev[z+g][y][x+g])
	x11 := pairIn(lv.pairX, prev[z+g][y+g][x], prev[z+g][y+g][x+g])
	y0 := pairIn(lv.pairY, x00, x01)
	y1 := pairIn(lv.pairY, x10, x11)
	return pairIn(lv.pairZ, y0, y1)
}

// unwind descends the levels; entering level k, r.Side/r.Name hold the
// largest S_{k+1}-prefix per cell, leaving with the largest S_k-prefix.
func (d *Dict) unwind(c *pram.Ctx, grids [][][][]int32, r *Result, zd, yd, xd int) {
	for k := len(d.levels) - 1; k >= 0; k-- {
		if c.Canceled() {
			break
		}
		lv := d.levels[k]
		g := 1 << uint(k)
		grid := grids[k]
		newSide := make([][][]int32, zd)
		newName := make([][][]int32, zd)
		c.For(zd, func(z int) {
			newSide[z] = make([][]int32, yd)
			newName[z] = make([][]int32, yd)
			for y := 0; y < yd; y++ {
				newSide[z][y] = make([]int32, xd)
				newName[z][y] = make([]int32, xd)
				for x := 0; x < xd; x++ {
					s, n := d.extendCell(lv, grid, r, z, y, x, g, zd, yd, xd)
					newSide[z][y][x] = s
					newName[z][y][x] = n
				}
			}
		})
		c.AddWork(boxWork(zd, yd, xd))
		r.Side, r.Name = newSide, newName
	}
}

// extendCell: Step 4b generalized — either the largest S_k-sub-prefix of
// α(τ), or the odd candidate assembled from the seven neighbour pieces plus
// the far-corner symbol.
func (d *Dict) extendCell(lv *level, grid [][][]int32, r *Result, z, y, x, g, zd, yd, xd int) (int32, int32) {
	twoI := 2 * int(r.Side[z][y][x])
	alpha := naming.Empty
	if twoI > 0 {
		alpha = lv.mapUp[r.Name[z][y][x]]
	}

	bestSide, bestName := int32(0), naming.Empty
	if alpha != naming.Empty {
		if lp := lv.lpS[alpha]; lp != naming.Empty {
			bestName = lp
			bestSide = lv.sideOf[lp]
		}
	}

	cz, cy, cx := z+twoI*g, y+twoI*g, x+twoI*g
	if cz >= zd || cy >= yd || cx >= xd {
		return bestSide, bestName
	}
	corner := grid[cz][cy][cx]
	if corner == naming.None {
		return bestSide, bestName
	}

	var pieces [7]int32
	if twoI > 0 {
		pieces[0] = alpha
		for t, v := range variants {
			n, ok := d.alphaTrunc(lv, r, z+v[0]*g, y+v[1]*g, x+v[2]*g, twoI, zd, yd, xd)
			if !ok {
				return bestSide, bestName
			}
			pieces[t+1] = n
		}
	} else {
		for t := range pieces {
			pieces[t] = naming.Empty
		}
	}
	cur := pieces[0]
	for t := 0; t < 6; t++ {
		v, ok := lv.cand[t].Get(naming.EncodePair(cur, pieces[t+1]))
		if !ok {
			return bestSide, bestName
		}
		cur = v
	}
	if v, ok := lv.cand[6].Get(naming.EncodePair(cur, corner)); ok {
		return int32(twoI + 1), v
	}
	return bestSide, bestName
}

// alphaTrunc derives the unified name of the side-twoI cube cornered at
// the neighbour cell from that cell's α value.
func (d *Dict) alphaTrunc(lv *level, r *Result, z, y, x, twoI int, zd, yd, xd int) (int32, bool) {
	if z >= zd || y >= yd || x >= xd {
		return naming.Empty, false
	}
	side := 2 * int(r.Side[z][y][x])
	if side < twoI {
		return naming.Empty, false
	}
	name := lv.mapUp[r.Name[z][y][x]]
	if side == twoI {
		return name, true
	}
	v, ok := lv.trunc.Get(naming.EncodePair(name, int32(twoI)))
	return v, ok
}
