package dynamic

import (
	"math/rand"
	"testing"

	"pardict/internal/naive"
	"pardict/internal/pram"
)

func ctx() *pram.Ctx { return pram.New(0) }

func enc(s string) []int32 {
	out := make([]int32, len(s))
	for i := range s {
		out[i] = int32(s[i])
	}
	return out
}

// oracle mirrors the dictionary with brute force.
type oracle struct {
	pats map[int32][]int32
}

func newOracle() *oracle { return &oracle{pats: map[int32][]int32{}} }

func (o *oracle) match(text []int32) []int32 {
	n := len(text)
	out := make([]int32, n)
	for j := range out {
		out[j] = -1
	}
	for j := 0; j < n; j++ {
		bestLen := 0
		for id, p := range o.pats {
			if len(p) > n-j || len(p) <= bestLen {
				continue
			}
			ok := true
			for t := range p {
				if p[t] != text[j+t] {
					ok = false
					break
				}
			}
			if ok {
				bestLen = len(p)
				out[j] = id
			}
		}
	}
	return out
}

func compare(t *testing.T, d *Dict, o *oracle, text []int32, tag string) {
	t.Helper()
	c := ctx()
	got := d.Match(c, text)
	want := o.match(text)
	for j := range text {
		if got.Pat[j] != want[j] {
			t.Fatalf("%s: pos %d: got pattern %d want %d (text=%v)", tag, j, got.Pat[j], want[j], text)
		}
	}
}

func TestInsertThenMatch(t *testing.T) {
	c := ctx()
	d := New()
	o := newOracle()
	for _, s := range []string{"he", "she", "his", "hers"} {
		id, err := d.Insert(c, enc(s))
		if err != nil {
			t.Fatal(err)
		}
		o.pats[id] = enc(s)
	}
	compare(t, d, o, enc("ushershehishe"), "basic")
}

func TestInsertIncremental(t *testing.T) {
	// Match after each insert: results must reflect exactly the live set.
	c := ctx()
	d := New()
	o := newOracle()
	text := enc("abcabdabcdab")
	for _, s := range []string{"ab", "abc", "abcd", "b", "dab"} {
		id, err := d.Insert(c, enc(s))
		if err != nil {
			t.Fatal(err)
		}
		o.pats[id] = enc(s)
		compare(t, d, o, text, "after insert "+s)
	}
}

func TestDeleteBasic(t *testing.T) {
	c := ctx()
	d := New()
	o := newOracle()
	ids := map[string]int32{}
	for _, s := range []string{"ab", "abc", "bc", "c"} {
		id, err := d.Insert(c, enc(s))
		if err != nil {
			t.Fatal(err)
		}
		ids[s] = id
		o.pats[id] = enc(s)
	}
	text := enc("abcabc")
	compare(t, d, o, text, "pre-delete")

	if err := d.Delete(c, enc("abc")); err != nil {
		t.Fatal(err)
	}
	delete(o.pats, ids["abc"])
	compare(t, d, o, text, "post-delete abc")

	if err := d.Delete(c, enc("ab")); err != nil {
		t.Fatal(err)
	}
	delete(o.pats, ids["ab"])
	compare(t, d, o, text, "post-delete ab")
}

func TestDeleteSharedPrefix(t *testing.T) {
	// Deleting "abc" must not break matching of live "abcd" (shared tuples
	// are refcounted).
	c := ctx()
	d := New()
	o := newOracle()
	id1, _ := d.Insert(c, enc("abc"))
	id2, _ := d.Insert(c, enc("abcd"))
	o.pats[id1] = enc("abc")
	o.pats[id2] = enc("abcd")
	if err := d.Delete(c, enc("abc")); err != nil {
		t.Fatal(err)
	}
	delete(o.pats, id1)
	compare(t, d, o, enc("xabcdxabc"), "shared prefix")
}

func TestReinsertAfterDelete(t *testing.T) {
	c := ctx()
	d := New()
	o := newOracle()
	id, _ := d.Insert(c, enc("abc"))
	o.pats[id] = enc("abc")
	if err := d.Delete(c, enc("abc")); err != nil {
		t.Fatal(err)
	}
	delete(o.pats, id)
	id2, err := d.Insert(c, enc("abc"))
	if err != nil {
		t.Fatal(err)
	}
	o.pats[id2] = enc("abc")
	compare(t, d, o, enc("zabcz"), "reinsert")
}

func TestErrors(t *testing.T) {
	c := ctx()
	d := New()
	if _, err := d.Insert(c, nil); err != ErrEmptyPattern {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Insert(c, enc("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(c, enc("ab")); err != ErrDuplicate {
		t.Fatalf("err = %v", err)
	}
	if err := d.Delete(c, enc("zz")); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
	if err := d.Delete(c, enc("a")); err != ErrNotFound {
		t.Fatalf("deleting a non-pattern prefix: err = %v", err)
	}
	if err := d.Delete(c, nil); err != ErrEmptyPattern {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyDict(t *testing.T) {
	c := ctx()
	d := New()
	r := d.Match(c, enc("abc"))
	for _, v := range r.Pat {
		if v != -1 {
			t.Fatal("empty dict matched")
		}
	}
	if d.LiveCount() != 0 || d.LiveSize() != 0 {
		t.Fatal("empty dict has size")
	}
}

func TestRebuildTriggers(t *testing.T) {
	c := ctx()
	d := New()
	var patterns [][]int32
	for i := 0; i < 16; i++ {
		p := enc(string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + "xyz")
		p = append(p, int32(i)) // ensure distinct
		patterns = append(patterns, p)
		if _, err := d.Insert(c, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if err := d.Delete(c, patterns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if d.Rebuilds() == 0 {
		t.Fatal("expected at least one rebuild after deleting 75% of the dictionary")
	}
	if d.LiveCount() != 4 {
		t.Fatalf("live = %d", d.LiveCount())
	}
	// Post-rebuild matching still correct.
	o := newOracle()
	for i := 12; i < 16; i++ {
		// ids after rebuild keep their original values: recover via Has+match.
		_ = i
	}
	// Build oracle from live set via Match on the patterns themselves.
	for i := 12; i < 16; i++ {
		r := d.Match(c, patterns[i])
		if r.Pat[0] < 0 {
			t.Fatalf("live pattern %d no longer matches", i)
		}
		o.pats[r.Pat[0]] = patterns[i]
	}
	text := append(append([]int32{9, 9}, patterns[13]...), 9)
	compare(t, d, o, text, "post-rebuild")
}

func TestRandomizedSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		c := ctx()
		d := New()
		o := newOracle()
		var liveList [][]int32
		sigma := 2 + rng.Intn(3)
		for op := 0; op < 120; op++ {
			switch {
			case len(liveList) == 0 || rng.Intn(3) > 0: // insert
				l := 1 + rng.Intn(12)
				p := make([]int32, l)
				for i := range p {
					p[i] = int32(rng.Intn(sigma))
				}
				id, err := d.Insert(c, p)
				if err == ErrDuplicate {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				o.pats[id] = p
				liveList = append(liveList, p)
			default: // delete
				i := rng.Intn(len(liveList))
				p := liveList[i]
				if err := d.Delete(c, p); err != nil {
					t.Fatal(err)
				}
				for id, q := range o.pats {
					if sameStr(q, p) {
						delete(o.pats, id)
						break
					}
				}
				liveList = append(liveList[:i], liveList[i+1:]...)
			}
			if op%10 == 9 {
				text := make([]int32, 60)
				for i := range text {
					text[i] = int32(rng.Intn(sigma))
				}
				compare(t, d, o, text, "random seq")
			}
		}
	}
}

func sameStr(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLongestPrefixLengths(t *testing.T) {
	c := ctx()
	d := New()
	if _, err := d.Insert(c, enc("abcde")); err != nil {
		t.Fatal(err)
	}
	lens := d.MatchLongestPrefix(c, enc("abcxabcdeyab"))
	want := []int32{3, 0, 0, 0, 5, 0, 0, 0, 0, 0, 2, 0}
	for j := range want {
		if lens[j] != want[j] {
			t.Fatalf("lens = %v, want %v", lens, want)
		}
	}
}

func TestMatchAgainstNaivePackage(t *testing.T) {
	// Cross-check ids/ordering against internal/naive on a static snapshot.
	c := ctx()
	d := New()
	pats := [][]int32{enc("aa"), enc("ab"), enc("aab"), enc("b")}
	for _, p := range pats {
		if _, err := d.Insert(c, p); err != nil {
			t.Fatal(err)
		}
	}
	text := enc("aabab")
	r := d.Match(c, text)
	want := naive.LongestPattern(pats, text)
	for j := range text {
		if r.Pat[j] != want[j] {
			t.Fatalf("pos %d: got %d want %d", j, r.Pat[j], want[j])
		}
	}
}

func TestManyInsertsGrowLevels(t *testing.T) {
	c := ctx()
	d := New()
	o := newOracle()
	// Insert patterns of sharply increasing lengths to force level growth.
	for _, l := range []int{1, 3, 9, 31, 70, 200} {
		p := make([]int32, l)
		for i := range p {
			p[i] = int32(i % 7)
		}
		id, err := d.Insert(c, p)
		if err != nil {
			t.Fatal(err)
		}
		o.pats[id] = p
	}
	text := make([]int32, 300)
	for i := range text {
		text[i] = int32(i % 7)
	}
	compare(t, d, o, text, "level growth")
	if d.MaxLen() != 200 {
		t.Fatalf("maxLen = %d", d.MaxLen())
	}
}

func TestInsertBatch(t *testing.T) {
	c := ctx()
	d := New()
	o := newOracle()
	pats := [][]int32{enc("alpha"), enc("beta"), enc(""), enc("alpha"), enc("gamma")}
	ids, errs := d.InsertBatch(c, pats)
	if errs[0] != nil || errs[1] != nil || errs[4] != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if errs[2] != ErrEmptyPattern {
		t.Fatalf("errs[2] = %v", errs[2])
	}
	if errs[3] != ErrDuplicate {
		t.Fatalf("errs[3] = %v", errs[3])
	}
	o.pats[ids[0]] = pats[0]
	o.pats[ids[1]] = pats[1]
	o.pats[ids[4]] = pats[4]
	compare(t, d, o, enc("xx alpha beta gamma xx"), "batch insert")
}

func TestDeleteBatch(t *testing.T) {
	c := ctx()
	d := New()
	o := newOracle()
	pats := [][]int32{enc("one"), enc("two"), enc("three")}
	ids, _ := d.InsertBatch(c, pats)
	for i, id := range ids {
		o.pats[id] = pats[i]
	}
	errs := d.DeleteBatch(c, [][]int32{enc("one"), enc("missing"), enc("three")})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("errs = %v", errs)
	}
	if errs[1] != ErrNotFound {
		t.Fatalf("errs[1] = %v", errs[1])
	}
	delete(o.pats, ids[0])
	delete(o.pats, ids[2])
	compare(t, d, o, enc("one two three"), "batch delete")
}

func TestInsertWorkShape(t *testing.T) {
	// Theorem 8: insert work/λ must grow by ~1 per doubling of M (log M),
	// not faster. Asserted as a permanent regression guard on the counters.
	c := ctx()
	d := New()
	const lam = 32
	seed := int64(7000)
	nextPat := func() []int32 {
		p := make([]int32, lam)
		r := seed
		seed++
		for i := range p {
			r = r*6364136223846793005 + 1442695040888963407
			p[i] = int32(uint64(r)>>33) % 8
		}
		return p
	}
	var at1k, at16k float64
	for d.LiveCount() < 16*1024/lam*lam { // keep inserting
		p := nextPat()
		c.ResetStats()
		if _, err := d.Insert(c, p); err != nil {
			continue
		}
		switch d.LiveSize() {
		case 1 << 10:
			at1k = float64(c.Work()) / lam
		case 1 << 14:
			at16k = float64(c.Work()) / lam
		}
		if d.LiveSize() >= 1<<14 && at16k != 0 {
			break
		}
	}
	if at1k == 0 || at16k == 0 {
		t.Fatalf("sampling failed: %v %v", at1k, at16k)
	}
	// 16x growth of M = +4 doublings: expect roughly +4 work/λ, certainly
	// not multiplicative growth.
	if at16k > at1k+8 || at16k < at1k {
		t.Fatalf("insert work/λ at M=1k: %.2f, at M=16k: %.2f — not log-shaped", at1k, at16k)
	}
}
