// Package dynamic implements §6 of the paper: dictionary matching under
// on-line insertions (partly dynamic, Theorems 7–8) and deletions (fully
// dynamic, Theorems 9–10).
//
// The static engine's sorted-rank names are replaced by counter-allocated
// names held in dynamic stamp-counting tables (§6.2.1): every tuple carries a
// reference count, so deleting a pattern decrements exactly the tuples it
// contributed and clears entries at zero. Inserting simulates the dictionary
// half of the static algorithm on the new pattern alone against the live
// tables ("partly dynamic namestamping"), in O(λ) table work.
//
// Longest-pattern resolution uses the AFM92 structure the paper adopts: a
// trie of the live patterns with pattern nodes marked, and nearest-marked-
// ancestor queries on its Euler tour (package eulertree) — O(log M) per
// query, marks flipped in O(log M) on insert/delete.
//
// When the live dictionary shrinks below half of everything inserted since
// the last rebuild, the §6.2 "squeeze" rebuilds the structure from the live
// patterns, keeping deletions O(λ log M) amortized.
package dynamic

import (
	"errors"
	"math/bits"

	"pardict/internal/eulertree"
	"pardict/internal/naming"
	"pardict/internal/pram"
	"pardict/internal/trie"
)

// Errors returned by dictionary operations.
var (
	ErrEmptyPattern = errors.New("dynamic: empty pattern")
	ErrDuplicate    = errors.New("dynamic: pattern already in dictionary")
	ErrNotFound     = errors.New("dynamic: pattern not in dictionary")
)

// Dict is a fully dynamic dictionary-matching structure. Operations must be
// serialized by the caller; Match itself fans out internally and performs no
// mutation.
type Dict struct {
	up   []*naming.CountTable // up[k]: (blockA, blockB) -> level-k block name
	down []*naming.CountTable // down[k]: (prefixName, block) -> prefix name

	blockCounters []int32 // per-level block name allocators
	nameCounter   int32   // prefix name allocator

	nameToNode []int32 // prefix name -> trie node
	tr         *trie.Trie
	forest     *eulertree.Forest

	live      map[int32][]int32 // id -> pattern (live only)
	liveSize  int               // sum of live pattern lengths
	totSize   int               // sum of all pattern sizes inserted since rebuild
	maxLen    int               // high-water longest pattern since rebuild
	nextID    int32
	pendingPN []int32 // prefix names handed from insertTables to insertTrie

	rebuilds int // diagnostic: number of squeezes performed
}

// New returns an empty dynamic dictionary.
func New() *Dict {
	return &Dict{
		tr:     trie.New(),
		forest: eulertree.New(),
		live:   make(map[int32][]int32),
	}
}

// LiveCount reports the number of live patterns.
func (d *Dict) LiveCount() int { return len(d.live) }

// LiveSize reports M, the total size of live patterns.
func (d *Dict) LiveSize() int { return d.liveSize }

// MaxLen reports the high-water longest pattern length since the last
// rebuild (the m in the matching bounds).
func (d *Dict) MaxLen() int { return d.maxLen }

// Rebuilds reports how many squeezes have happened (test/diagnostic hook).
func (d *Dict) Rebuilds() int { return d.rebuilds }

// Has reports whether pattern p is live.
func (d *Dict) Has(p []int32) bool {
	node, l := d.tr.Walk(p)
	return l == len(p) && d.tr.IsMarked(node)
}

// levelsFor grows the table slices to cover patterns of length maxLen.
func (d *Dict) levelsFor(maxLen int) int {
	k := bits.Len(uint(maxLen))
	for len(d.up) < k {
		d.up = append(d.up, naming.NewCountTable())
		d.down = append(d.down, naming.NewCountTable())
		d.blockCounters = append(d.blockCounters, 0)
	}
	return k
}

// Insert adds pattern p and returns its id. O(λ·log M) work: O(λ) dynamic
// namestamping plus O(λ) Euler-tour insertions of O(log M) each.
func (d *Dict) Insert(c *pram.Ctx, p []int32) (int32, error) {
	if len(p) == 0 {
		return 0, ErrEmptyPattern
	}
	if d.Has(p) {
		return 0, ErrDuplicate
	}
	id := d.nextID
	d.nextID++
	d.insertTables(c, p)
	d.insertTrie(c, p, id)
	cp := append([]int32(nil), p...)
	d.live[id] = cp
	d.liveSize += len(p)
	d.totSize += len(p)
	if len(p) > d.maxLen {
		d.maxLen = len(p)
	}
	return id, nil
}

// insertTables simulates the static dictionary processing of §4.1 on p:
// upsweep block naming and downsweep prefix naming, with every namestamp
// going through the counted dynamic tables.
func (d *Dict) insertTables(c *pram.Ctx, p []int32) {
	levels := d.levelsFor(len(p))

	// Upsweep: aligned block names per level.
	blocks := make([][]int32, levels)
	blocks[0] = p
	for k := 1; k < levels; k++ {
		prev := blocks[k-1]
		cur := make([]int32, len(prev)/2)
		for t := 0; t+1 < len(prev); t += 2 {
			key := naming.EncodePair(prev[t], prev[t+1])
			cand := d.blockCounters[k]
			got := d.up[k].Insert(key, cand)
			if got == cand {
				d.blockCounters[k]++
			}
			cur[t/2] = got
		}
		blocks[k] = cur
	}

	// Downsweep: prefix names, coarse levels first.
	pn := make([]int32, len(p)+1)
	pn[0] = naming.Empty
	for k := levels - 1; k >= 0; k-- {
		step := 1 << uint(k)
		for l := step; l <= len(p); l += 2 * step {
			key := naming.EncodePair(pn[l-step], blocks[k][(l-step)/step])
			cand := d.nameCounter
			got := d.down[k].Insert(key, cand)
			if got == cand {
				d.nameCounter++
				d.nameToNode = append(d.nameToNode, trie.None)
			}
			pn[l] = got
		}
	}
	c.AddWork(int64(2 * len(p)))
	c.AddDepth(int64(2 * levels))

	// Hand the prefix names to insertTrie (operations are serialized, so a
	// field suffices) to bind them to trie nodes.
	d.pendingPN = pn
}

// insertTrie adds p to the trie and Euler forest, marks the pattern node,
// and binds prefix names to trie nodes.
func (d *Dict) insertTrie(c *pram.Ctx, p []int32, id int32) {
	node, created := d.tr.Insert(p)
	for _, v := range created {
		d.forest.AddChild(v, d.tr.Parent(v))
	}
	d.tr.Mark(node, id)
	d.forest.Mark(node)

	cur := int32(0)
	for l := 1; l <= len(p); l++ {
		cur = d.tr.Child(cur, p[l-1])
		d.nameToNode[d.pendingPN[l]] = cur
	}
	d.pendingPN = nil
	c.AddWork(int64(len(p)) * int64(log2(d.tr.Len())+1))
	c.AddDepth(int64(log2(d.tr.Len()) + 1))
}

func log2(x int) int { return bits.Len(uint(x)) }

// Delete removes pattern p. O(λ·log M) amortized work: the tuple decrements
// plus the unmark, with a full rebuild once the live size halves.
func (d *Dict) Delete(c *pram.Ctx, p []int32) error {
	if len(p) == 0 {
		return ErrEmptyPattern
	}
	node, l := d.tr.Walk(p)
	if l != len(p) || !d.tr.IsMarked(node) {
		return ErrNotFound
	}
	id := d.tr.Unmark(node)
	d.forest.Unmark(node)
	delete(d.live, id)
	d.liveSize -= len(p)

	d.removeTables(c, p)

	if d.liveSize*2 < d.totSize {
		d.rebuild(c)
	}
	return nil
}

// removeTables decrements exactly the tuples Insert contributed for p
// (recomputed from the pattern content; counts make sharing safe).
func (d *Dict) removeTables(c *pram.Ctx, p []int32) {
	levels := d.levelsFor(len(p))
	blocks := make([][]int32, levels)
	blocks[0] = p
	for k := 1; k < levels; k++ {
		prev := blocks[k-1]
		cur := make([]int32, len(prev)/2)
		for t := 0; t+1 < len(prev); t += 2 {
			key := naming.EncodePair(prev[t], prev[t+1])
			cur[t/2] = d.up[k].Lookup(key)
			d.up[k].Remove(key)
		}
		blocks[k] = cur
	}
	pn := make([]int32, len(p)+1)
	pn[0] = naming.Empty
	for k := levels - 1; k >= 0; k-- {
		step := 1 << uint(k)
		for l := step; l <= len(p); l += 2 * step {
			key := naming.EncodePair(pn[l-step], blocks[k][(l-step)/step])
			pn[l] = d.down[k].Lookup(key)
			d.down[k].Remove(key)
		}
	}
	c.AddWork(int64(2 * len(p)))
	c.AddDepth(int64(2 * levels))
}

// rebuild reconstructs every structure from the live patterns (the squeeze
// of §6.2): names restart from zero, dead trie nodes are dropped.
func (d *Dict) rebuild(c *pram.Ctx) {
	liveIDs := make([]int32, 0, len(d.live))
	for id := range d.live {
		liveIDs = append(liveIDs, id)
	}
	// Deterministic order (ids ascend).
	for i := 1; i < len(liveIDs); i++ {
		for k := i; k > 0 && liveIDs[k] < liveIDs[k-1]; k-- {
			liveIDs[k], liveIDs[k-1] = liveIDs[k-1], liveIDs[k]
		}
	}
	old := d.live

	d.up = nil
	d.down = nil
	d.blockCounters = nil
	d.nameCounter = 0
	d.nameToNode = nil
	d.tr = trie.New()
	d.forest = eulertree.New()
	d.live = make(map[int32][]int32, len(old))
	d.liveSize = 0
	d.totSize = 0
	d.maxLen = 0

	for _, id := range liveIDs {
		p := old[id]
		d.insertTables(c, p)
		d.insertTrie(c, p, id)
		d.live[id] = p
		d.liveSize += len(p)
		d.totSize += len(p)
		if len(p) > d.maxLen {
			d.maxLen = len(p)
		}
	}
	d.rebuilds++
}

// InsertBatch adds several patterns in one operation (§6.1.1 notes the
// algorithm "carries over to the case when several pattern strings are
// inserted simultaneously"). Patterns already present or empty are reported
// per-index in errs; ids[i] is valid where errs[i] is nil. On a PRAM the
// batch runs as one bulk phase; here it shares one depth charge.
func (d *Dict) InsertBatch(c *pram.Ctx, patterns [][]int32) (ids []int32, errs []error) {
	ids = make([]int32, len(patterns))
	errs = make([]error, len(patterns))
	depth0 := c.Depth()
	for i, p := range patterns {
		ids[i], errs[i] = d.Insert(c, p)
	}
	// Collapse the per-insert depth into one batch phase (the inserts touch
	// disjoint or refcounted table entries and commute).
	c.AddDepth(depth0 + int64(2*log2(d.maxLen+2)) - c.Depth())
	return ids, errs
}

// DeleteBatch removes several patterns in one operation, sharing a single
// rebuild if the squeeze triggers.
func (d *Dict) DeleteBatch(c *pram.Ctx, patterns [][]int32) []error {
	errs := make([]error, len(patterns))
	for i, p := range patterns {
		errs[i] = d.Delete(c, p)
	}
	return errs
}
