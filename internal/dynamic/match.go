package dynamic

import (
	"pardict/internal/naming"
	"pardict/internal/pram"
	"pardict/internal/trie"
)

// Result is the per-position output of a dynamic match.
type Result struct {
	// Len[j] is the length of the longest live-dictionary prefix at j.
	Len []int32
	// Pat[j] is the id of the longest live pattern matching at j, or -1.
	Pat []int32
}

// Match finds, per text position, the longest live pattern (Theorem 8/10
// match: O(n·log M) work — the log M is the nearest-marked-ancestor query).
func (d *Dict) Match(c *pram.Ctx, text []int32) *Result {
	n := len(text)
	r := &Result{Len: make([]int32, n), Pat: make([]int32, n)}
	pram.Fill(c, r.Pat, -1)
	if n == 0 || d.maxLen == 0 {
		return r
	}
	levels := len(d.up)

	// Spawn: level-k text symbols via the dynamic up tables.
	syms := make([][]int32, levels)
	syms[0] = text
	for k := 1; k < levels; k++ {
		if c.Canceled() {
			break
		}
		prev := syms[k-1]
		cur := make([]int32, n)
		half := 1 << uint(k-1)
		up := d.up[k]
		c.For(n, func(j int) {
			if j+2*half > n {
				cur[j] = naming.None
				return
			}
			a, b := prev[j], prev[j+half]
			if a == naming.None || b == naming.None {
				cur[j] = naming.None
				return
			}
			cur[j] = up.Lookup(naming.EncodePair(a, b))
		})
		syms[k] = cur
	}

	// Unwind: Extend-Right per level via the dynamic down tables.
	names := make([]int32, n)
	pram.Fill(c, names, naming.Empty)
	for k := levels - 1; k >= 0; k-- {
		if c.Canceled() {
			break
		}
		step := 1 << uint(k)
		down := d.down[k]
		level := syms[k]
		c.For(n, func(j int) {
			l := int(r.Len[j])
			pos := j + l
			if pos+step > n {
				return
			}
			b := level[pos]
			if b == naming.None {
				return
			}
			if v, ok := down.Get(naming.EncodePair(names[j], b)); ok {
				r.Len[j] = int32(l + step)
				names[j] = v
			}
		})
	}

	// Longest pattern via nearest marked ancestor on the live trie
	// (the deleted-pattern prefixes that survive in the tables are pruned
	// here: their nodes are unmarked).
	c.For(n, func(j int) {
		if names[j] == naming.Empty {
			return
		}
		node := d.nameToNode[names[j]]
		if node == trie.None {
			return
		}
		if m := d.forest.NearestMarked(node); m >= 0 {
			r.Pat[j] = d.tr.PatternAt(m)
		}
	})
	// Each query walks O(log M) Euler-tour tree levels — the log M factor in
	// the Theorem 8/10 match bound, charged explicitly.
	c.AddWork(int64(n) * int64(log2(d.tr.Len())))
	c.AddDepth(int64(log2(d.tr.Len()) + 1))
	return r
}

// MatchLongestPrefix runs only the dynamic prefix-matching of §6.1.1/6.2.1
// (Theorems 7 and 9): longest live-table prefix lengths, no trie query.
// Note: after deletions, prefixes of dead patterns may persist until the
// next rebuild; the pattern-level Match above is exact at all times.
func (d *Dict) MatchLongestPrefix(c *pram.Ctx, text []int32) []int32 {
	r := d.Match(c, text)
	return r.Len
}
