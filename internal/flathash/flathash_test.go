package flathash

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New[int32](0)
	if _, ok := m.Get(42); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Put(42, 7)
	if v, ok := m.Get(42); !ok || v != 7 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
	m.Put(42, 9)
	if v, _ := m.Get(42); v != 9 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if r, ins := m.PutIfAbsent(42, 1); ins || r != 9 {
		t.Fatalf("PutIfAbsent on present key: (%d,%v)", r, ins)
	}
	if r, ins := m.PutIfAbsent(43, 1); !ins || r != 1 {
		t.Fatalf("PutIfAbsent on absent key: (%d,%v)", r, ins)
	}
	if !m.Delete(42) || m.Delete(42) {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := m.Get(42); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 1 {
		t.Fatalf("len after delete = %d", m.Len())
	}
}

func TestZeroValueMap(t *testing.T) {
	var m Map[int32]
	if _, ok := m.Get(1); ok {
		t.Fatal("zero map reported a hit")
	}
	if m.Delete(1) {
		t.Fatal("zero map deleted something")
	}
	m.Put(1, 2)
	if v, ok := m.Get(1); !ok || v != 2 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

// TestGrowthKeepsEntries pushes through several doublings.
func TestGrowthKeepsEntries(t *testing.T) {
	m := New[int32](0)
	const n = 10000
	for i := 0; i < n; i++ {
		m.Put(uint64(i)*0x9E37+1, int32(i))
	}
	if m.Len() != n {
		t.Fatalf("len = %d", m.Len())
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(uint64(i)*0x9E37 + 1); !ok || v != int32(i) {
			t.Fatalf("key %d: (%d,%v)", i, v, ok)
		}
	}
}

// TestDeleteChurn interleaves inserts and deletes against a map oracle so
// backward-shift deletion is exercised across cluster boundaries.
func TestDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New[int32](0)
	oracle := map[uint64]int32{}
	keys := make([]uint64, 0, 4096)
	for step := 0; step < 200000; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(keys) == 0:
			k := uint64(rng.Intn(8192)) // small space => heavy collisions
			v := int32(rng.Int31())
			m.Put(k, v)
			if _, dup := oracle[k]; !dup {
				keys = append(keys, k)
			}
			oracle[k] = v
		case op < 9:
			i := rng.Intn(len(keys))
			k := keys[i]
			_, want := oracle[k]
			if got := m.Delete(k); got != want {
				t.Fatalf("Delete(%d) = %v, oracle %v", k, got, want)
			}
			delete(oracle, k)
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		default:
			k := uint64(rng.Intn(8192))
			got, ok := m.Get(k)
			want, wok := oracle[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("Get(%d) = (%d,%v), oracle (%d,%v)", k, got, ok, want, wok)
			}
		}
	}
	if m.Len() != len(oracle) {
		t.Fatalf("len = %d, oracle %d", m.Len(), len(oracle))
	}
	for k, want := range oracle {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final Get(%d) = (%d,%v), want %d", k, got, ok, want)
		}
	}
}

func TestRangeVisitsEverything(t *testing.T) {
	m := New[int32](0)
	for i := 0; i < 100; i++ {
		m.Put(uint64(i), int32(i))
	}
	seen := map[uint64]int32{}
	m.Range(func(k uint64, v int32) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("ranged %d entries", len(seen))
	}
	count := 0
	m.Range(func(uint64, int32) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop range visited %d", count)
	}
}

func TestStructValues(t *testing.T) {
	type entry struct{ a, b int32 }
	m := New[entry](0)
	m.Put(5, entry{1, 2})
	if v, ok := m.Get(5); !ok || v != (entry{1, 2}) {
		t.Fatalf("got %+v %v", v, ok)
	}
}

// FuzzMapOracle drives a random op sequence against the built-in map.
func FuzzMapOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := New[int32](0)
		oracle := map[uint64]int32{}
		for len(data) >= 3 {
			op := data[0] % 3
			klen := 1 + int(data[1]%8)
			if len(data) < 2+klen {
				break
			}
			var kb [8]byte
			copy(kb[:], data[2:2+klen])
			k := binary.LittleEndian.Uint64(kb[:]) % 257 // force clustering
			v := int32(data[1])
			data = data[2+klen:]
			switch op {
			case 0:
				m.Put(k, v)
				oracle[k] = v
			case 1:
				got := m.Delete(k)
				_, want := oracle[k]
				if got != want {
					t.Fatalf("Delete(%d) = %v, want %v", k, got, want)
				}
				delete(oracle, k)
			case 2:
				got, ok := m.Get(k)
				want, wok := oracle[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,%v)", k, got, ok, want, wok)
				}
			}
		}
		if m.Len() != len(oracle) {
			t.Fatalf("len %d vs oracle %d", m.Len(), len(oracle))
		}
	})
}
