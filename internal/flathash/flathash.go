// Package flathash implements the open-addressed hash table the scan and
// build paths use in place of Go's map[uint64]V: a power-of-two table split
// into three flat arrays — an 8-bit fingerprint array probed first, then
// parallel key and value arrays — with linear probing and backward-shift
// deletion.
//
// The point is memory layout, not asymptotics. A Go map lookup chases
// bucket pointers and touches tophash, key, and value cells spread across
// heap objects; a flathash probe is one fingerprint byte load (which on a
// miss usually settles the question within a cache line) followed by at most
// one key compare in a contiguous array. The engines perform one such lookup
// per text position per cascade level, so the difference is the dominant
// constant factor of the whole matcher (EXPERIMENTS.md E15).
//
// Tables support single-writer mutation with concurrent-reader safety only
// while no writer is active — exactly the contract naming.Table documented
// for its map shards. Growth rehashes in place of the old arrays, so readers
// must not overlap writers.
package flathash

// fib64 is the Fibonacci multiplier 2^64/φ used to spread uint64 keys; the
// high bits of k*fib64 index the table and bits 48..55 provide the
// fingerprint, so the two are decorrelated for any table size below 2^48.
const fib64 = 0x9E3779B97F4A7C15

// minSize keeps even tiny tables one cache line wide so the first probes of
// a growing table never rehash more than a handful of entries.
const minSize = 8

// Map is an open-addressed uint64 -> V hash table. The zero value is an
// empty usable map (it allocates on first Put). Reads are lock-free and safe
// concurrently with each other, but not with a writer.
type Map[V any] struct {
	fps   []uint8 // 0 = empty slot; otherwise a nonzero hash fingerprint
	keys  []uint64
	vals  []V
	mask  uint64
	shift uint
	n     int
}

// New returns a map pre-sized for about n entries.
func New[V any](n int) *Map[V] {
	m := &Map[V]{}
	m.init(sizeFor(n))
	return m
}

func sizeFor(n int) int {
	size := minSize
	for size < 2*n {
		size <<= 1
	}
	return size
}

func (m *Map[V]) init(size int) {
	m.fps = make([]uint8, size)
	m.keys = make([]uint64, size)
	m.vals = make([]V, size)
	m.mask = uint64(size - 1)
	m.shift = 64
	for s := size; s > 1; s >>= 1 {
		m.shift--
	}
	m.n = 0
}

// fingerprint derives the nonzero 8-bit tag stored in the fps array.
func fingerprint(h uint64) uint8 {
	fp := uint8(h >> 48)
	if fp == 0 {
		fp = 1
	}
	return fp
}

// Len reports the number of entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns the value for k and whether it is present.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if m.fps == nil {
		var zero V
		return zero, false
	}
	h := k * fib64
	fp := fingerprint(h)
	i := h >> m.shift
	for {
		f := m.fps[i]
		if f == 0 {
			var zero V
			return zero, false
		}
		if f == fp && m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
}

// Put inserts or overwrites the value for k. Single-writer only.
func (m *Map[V]) Put(k uint64, v V) {
	i, ok := m.slot(k)
	if ok {
		m.vals[i] = v
		return
	}
	m.insertAt(i, k, v)
}

// PutIfAbsent inserts v for k if absent and returns the resident value along
// with whether an insert happened. Single-writer only.
func (m *Map[V]) PutIfAbsent(k uint64, v V) (resident V, inserted bool) {
	i, ok := m.slot(k)
	if ok {
		return m.vals[i], false
	}
	m.insertAt(i, k, v)
	return v, true
}

// slot probes for k, returning its slot when present (ok=true) or the empty
// slot where it would be inserted (ok=false). The caller must not mutate the
// table between slot and insertAt.
func (m *Map[V]) slot(k uint64) (uint64, bool) {
	if m.fps == nil {
		m.init(minSize)
	}
	h := k * fib64
	fp := fingerprint(h)
	i := h >> m.shift
	for {
		f := m.fps[i]
		if f == 0 {
			return i, false
		}
		if f == fp && m.keys[i] == k {
			return i, true
		}
		i = (i + 1) & m.mask
	}
}

func (m *Map[V]) insertAt(i uint64, k uint64, v V) {
	// Grow at 7/8 load: linear probing degrades sharply past that.
	if 8*(m.n+1) > 7*len(m.fps) {
		m.grow()
		i, _ = m.slot(k)
	}
	m.fps[i] = fingerprint(k * fib64)
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

func (m *Map[V]) grow() {
	oldFps, oldKeys, oldVals := m.fps, m.keys, m.vals
	m.init(2 * len(oldFps))
	for j, f := range oldFps {
		if f == 0 {
			continue
		}
		i, _ := m.slot(oldKeys[j])
		m.fps[i] = f
		m.keys[i] = oldKeys[j]
		m.vals[i] = oldVals[j]
		m.n++
	}
}

// Delete removes k, reporting whether it was present. Single-writer only.
// Deletion is backward-shift (no tombstones): subsequent entries of the
// probe cluster are moved up so probe chains stay dense and lookups never
// slow down after churn.
func (m *Map[V]) Delete(k uint64) bool {
	i, ok := m.slot(k)
	if !ok {
		return false
	}
	m.n--
	// Backward-shift: walk the cluster after i; any entry whose home slot is
	// at or before the hole (cyclically) fills it, opening a new hole.
	hole := i
	j := (i + 1) & m.mask
	for {
		if m.fps[j] == 0 {
			break
		}
		home := (m.keys[j] * fib64) >> m.shift
		// Entry at j may move into the hole iff its home position does not
		// lie in the cyclic interval (hole, j].
		if cyclicBetween(hole, home, j) {
			j = (j + 1) & m.mask
			continue
		}
		m.fps[hole] = m.fps[j]
		m.keys[hole] = m.keys[j]
		m.vals[hole] = m.vals[j]
		hole = j
		j = (j + 1) & m.mask
	}
	m.fps[hole] = 0
	m.keys[hole] = 0
	var zero V
	m.vals[hole] = zero
	return true
}

// cyclicBetween reports whether x lies in the cyclic half-open interval
// (lo, hi] of table indices.
func cyclicBetween(lo, x, hi uint64) bool {
	if lo <= hi {
		return lo < x && x <= hi
	}
	return lo < x || x <= hi
}

// Range calls f for every entry until f returns false. Iteration order is
// unspecified but deterministic for a given insertion history. The table
// must not be mutated during Range.
func (m *Map[V]) Range(f func(k uint64, v V) bool) {
	for i, fp := range m.fps {
		if fp == 0 {
			continue
		}
		if !f(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// MaxProbe returns the longest probe distance (in slots) of any resident
// entry — the distance linear probing walks from the entry's home slot to
// where it actually lives. It scans the whole table; a diagnostic for tests
// and for validating hash quality, not a hot-path call.
func (m *Map[V]) MaxProbe() int {
	max := 0
	size := uint64(len(m.fps))
	for i, f := range m.fps {
		if f == 0 {
			continue
		}
		home := (m.keys[i] * fib64) >> m.shift
		d := int((uint64(i) - home + size) & m.mask)
		if d > max {
			max = d
		}
	}
	return max
}
