package dict2d

import (
	"errors"
	"math/rand"
	"testing"

	"pardict/internal/naive"
	"pardict/internal/pram"
	"pardict/internal/workload"
)

func ctx() *pram.Ctx { return pram.New(0) }

func grid(rows ...string) [][]int32 {
	out := make([][]int32, len(rows))
	for i, r := range rows {
		out[i] = make([]int32, len(r))
		for j := range r {
			out[i][j] = int32(r[j])
		}
	}
	return out
}

func check(t *testing.T, pats [][][]int32, text [][]int32) {
	t.Helper()
	c := ctx()
	d, err := Preprocess(c, pats)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	r, err := d.Match(c, text)
	if err != nil {
		t.Fatal(err)
	}
	wantSide, _ := naive.LongestSquarePrefix2D(pats, text)
	wantPat := naive.LargestFullMatch2D(pats, text)
	for i := range text {
		for j := range text[i] {
			if r.Side[i][j] != wantSide[i][j] {
				t.Fatalf("cell (%d,%d): side %d want %d", i, j, r.Side[i][j], wantSide[i][j])
			}
			if r.Pat[i][j] != wantPat[i][j] {
				t.Fatalf("cell (%d,%d): pat %d want %d", i, j, r.Pat[i][j], wantPat[i][j])
			}
		}
	}
}

func TestSingleCellPattern(t *testing.T) {
	check(t, [][][]int32{grid("a")}, grid("aba", "bab"))
}

func TestBasic2x2(t *testing.T) {
	pats := [][][]int32{grid("ab", "cd")}
	text := grid(
		"abab",
		"cdcd",
		"abab",
		"cdcd",
	)
	check(t, pats, text)
}

func TestMixedSizes(t *testing.T) {
	pats := [][][]int32{
		grid("a"),
		grid("ab", "ca"),
		grid("abx", "cay", "zzz"),
	}
	text := grid(
		"abxab",
		"cayca",
		"zzzzz",
		"abxab",
		"cayca",
	)
	check(t, pats, text)
}

func TestOddSides(t *testing.T) {
	pats := [][][]int32{
		grid("abc", "def", "ghi"),
		grid("abcde", "fghij", "klmno", "pqrst", "uvwxy"),
	}
	text := grid(
		"abcdeab",
		"fghijde",
		"klmnogh",
		"pqrstij",
		"uvwxykl",
		"abcdeab",
		"defdefg",
	)
	check(t, pats, text)
}

func TestRandomSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		sigma := 1 + rng.Intn(3)
		np := 1 + rng.Intn(4)
		pats := make([][][]int32, 0, np)
		seen := map[string]bool{}
		for len(pats) < np {
			side := 1 + rng.Intn(6)
			p := make([][]int32, side)
			for a := range p {
				p[a] = make([]int32, side)
				for b := range p[a] {
					p[a][b] = int32(rng.Intn(sigma))
				}
			}
			k := gridKey(p)
			if seen[k] {
				continue
			}
			seen[k] = true
			pats = append(pats, p)
		}
		rows, cols := 1+rng.Intn(14), 1+rng.Intn(14)
		text := make([][]int32, rows)
		for i := range text {
			text[i] = make([]int32, cols)
			for j := range text[i] {
				text[i][j] = int32(rng.Intn(sigma))
			}
		}
		check(t, pats, text)
	}
}

func TestRandomLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		sigma := 2
		pats := workload.SquarePatterns(int64(trial), 4, 2+rng.Intn(12), sigma)
		text := workload.Grid(int64(trial)+100, 30, 30, sigma, 0.3)
		// Plant one occurrence so matches exist.
		p := pats[0]
		workload.PlantGrid(text, p, 5, 7)
		check(t, pats, text)
	}
}

func TestPlantedLarge(t *testing.T) {
	for _, side := range []int{9, 16, 21, 32} {
		pats := workload.SquarePatterns(int64(side), 1, side, 3)
		// Shift the pattern's alphabet so only the plant matches.
		for _, row := range pats[0] {
			for j := range row {
				row[j] += 5
			}
		}
		text := workload.Grid(int64(side)+7, 2*side+3, 2*side+3, 3, 0.2)
		workload.PlantGrid(text, pats[0], 3, side-1)
		c := ctx()
		d, err := Preprocess(c, pats)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Match(c, text)
		if err != nil {
			t.Fatal(err)
		}
		for i := range text {
			for j := range text[i] {
				want := int32(-1)
				if i == 3 && j == side-1 {
					want = 0
				}
				if r.Pat[i][j] != want {
					t.Fatalf("side=%d cell (%d,%d): got %d want %d", side, i, j, r.Pat[i][j], want)
				}
			}
		}
	}
}

func TestNestedSquares(t *testing.T) {
	// Patterns nested at the corner: 1x1, 2x2, 3x3, 4x4, 5x5 all-zero.
	var pats [][][]int32
	for s := 1; s <= 5; s++ {
		p := make([][]int32, s)
		for i := range p {
			p[i] = make([]int32, s)
		}
		pats = append(pats, p)
	}
	text := make([][]int32, 9)
	for i := range text {
		text[i] = make([]int32, 9)
	}
	check(t, pats, text)
}

func TestErrors(t *testing.T) {
	c := ctx()
	if _, err := Preprocess(c, [][][]int32{{}}); err != ErrEmptyPattern {
		t.Fatalf("err = %v", err)
	}
	if _, err := Preprocess(c, [][][]int32{grid("ab", "c")}); err != ErrNotSquare {
		t.Fatalf("err = %v", err)
	}
	if _, err := Preprocess(c, [][][]int32{grid("a"), grid("a")}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	d, err := Preprocess(c, [][][]int32{grid("a")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Match(c, grid("ab", "c")); err != ErrRagged {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyDictAndText(t *testing.T) {
	c := ctx()
	d, err := Preprocess(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Match(c, grid("ab", "cd"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Pat {
		for j := range r.Pat[i] {
			if r.Pat[i][j] != -1 {
				t.Fatal("empty dict matched")
			}
		}
	}
	if _, err := d.Match(c, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTextSmallerThanPatterns(t *testing.T) {
	pats := workload.SquarePatterns(3, 2, 6, 2)
	text := workload.Grid(5, 3, 3, 2, 0.1)
	check(t, pats, text)
}

func TestPrefixSquareSides(t *testing.T) {
	// Verify Side (prefix matching) on a handcrafted case where the largest
	// square-prefix is strictly larger than any full pattern match.
	pats := [][][]int32{grid("abc", "def", "ghi")}
	text := grid("ab", "de") // matches the 2x2 prefix only
	c := ctx()
	d, err := Preprocess(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Match(c, text)
	if err != nil {
		t.Fatal(err)
	}
	if r.Side[0][0] != 2 || r.Pat[0][0] != -1 {
		t.Fatalf("side=%d pat=%d, want side=2 pat=-1", r.Side[0][0], r.Pat[0][0])
	}
}

func TestAllMatches2D(t *testing.T) {
	// Nested corner squares 1..4 plus an unrelated pattern.
	var pats [][][]int32
	big := grid("abcd", "efgh", "ijkl", "mnop")
	for s := 1; s <= 4; s++ {
		p := make([][]int32, s)
		for i := 0; i < s; i++ {
			p[i] = big[i][:s]
		}
		pats = append(pats, p)
	}
	pats = append(pats, grid("zz", "zz"))
	c := ctx()
	d, err := Preprocess(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	text := big
	r, err := d.Match(c, text)
	if err != nil {
		t.Fatal(err)
	}
	got := d.AllMatches(r, 0, 0, nil)
	want := []int32{3, 2, 1, 0} // sides 4,3,2,1
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if out := d.AllMatches(r, 0, 1, nil); len(out) != 0 {
		t.Fatalf("cell (0,1): %v", out)
	}
}

func TestMetadataAccessors(t *testing.T) {
	c := ctx()
	d, err := Preprocess(c, [][][]int32{grid("ab", "cd"), grid("x")})
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxSide() != 2 || d.PatternCount() != 2 {
		t.Fatalf("MaxSide=%d PatternCount=%d", d.MaxSide(), d.PatternCount())
	}
}
