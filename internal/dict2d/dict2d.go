// Package dict2d implements §5 of the paper: two-dimensional dictionary
// matching over square patterns of (possibly) different sides, in O(log m)
// time, O(M) preprocessing work and O(n·log m) matching work (Theorem 6).
//
// Level k of the recursion works on the set S_k of squares over level-k
// symbols (2^k × 2^k blocks of original characters):
//
//   - S'_k = S_k ∪ S_k^r ∪ S_k^c adds the stripped variants (top row / left
//     column removed, truncated back to squares) so that odd-side extension
//     can consume neighbours' match results;
//   - every element of S'_k gets unified square-prefix names δ2 (row prefix
//     naming, then column prefix naming over the row names — Lemma 1);
//     "unified" means equal (content, side) ⇒ equal name across all three
//     variants, which collapses the paper's per-set case analysis into plain
//     table lookups;
//   - S_{k+1} = S'_k shrunk by naming disjoint 2×2 blocks (the spawn side is
//     implicit: the level-k text block grid B_k holds the block name at
//     every cell, and the four spawned texts of §5 Step 1 are its stride-2^k
//     subsamplings).
//
// Unwinding, per cell τ and level k: the recursion (level k+1) supplies the
// largest even-side S'_k-prefix α(τ). The answer at level k is either the
// largest S_k-sub-prefix of α(τ) (lpS table) or the odd candidate of side
// 2i+1, checked with one namestamp of ⟨n_e, n_r, n_c, corner⟩ (Step 4b)
// where n_r, n_c are truncations of the neighbours' α values — O(1) lookups
// per cell per level.
package dict2d

import (
	"errors"
	"fmt"

	"pardict/internal/naming"
	"pardict/internal/pram"
)

// Errors reported by Preprocess.
var (
	ErrNotSquare    = errors.New("dict2d: patterns must be squares")
	ErrEmptyPattern = errors.New("dict2d: empty pattern")
	ErrDuplicate    = errors.New("dict2d: duplicate pattern")
	ErrRagged       = errors.New("dict2d: text must be rectangular")
)

// Dict is a preprocessed 2-D dictionary. Immutable after Preprocess; safe
// for concurrent Match calls.
type Dict struct {
	levels []*level
	lpPat  []int32 // level-0 δ2 name -> largest pattern that is a sub-prefix
	// nextShort[p] = largest pattern that is a proper sub-prefix (smaller
	// corner square) of pattern p, or -1: the §4.2-style chain that makes
	// all-matches output per cell output-sensitive.
	nextShort []int32
	maxSide   int
	np        int
}

// level holds the per-recursion-level tables (see package comment).
type level struct {
	// Block naming: quad (a,b | c,d) -> level-(k+1) symbol, staged as
	// pairRow (a,b)->x, pairRow (c,d)->y, quad (x,y)->name.
	pairRow, quad *naming.Frozen

	// Unified square-prefix machinery over S'_k.
	sideOf []int32        // δ2 name -> side
	trunc  *naming.Frozen // (δ2 name, smaller side) -> δ2 name of sub-prefix
	lpS    []int32        // δ2 name -> δ2 name of largest S_k-sub-prefix (or Empty)

	// Odd-candidate tuple table, staged: (n_e,n_r)->t, (t,n_c)->u,
	// (u,corner)->δ2 name of the (2i+1)-side S_k-prefix.
	candA, candB, candC *naming.Frozen

	// mapUp[next-level δ2 name] = this-level δ2 name of the unshrunk
	// (doubled-side) prefix.
	mapUp []int32

	// Deferred mapUp fill: the shrunk elements (whose names the next level
	// assigns) paired with their sources in S'_k.
	pendingMap []*square
	pendingSrc []*square
}

// square is one element of S'_k with its δ2 prefix names by side.
type square struct {
	cells [][]int32 // side × side
	pn    []int32   // pn[s-1] = δ2 name of the side-s prefix
	isS   bool      // true when the element is in S_k (not a stripped variant)
	pat   int32     // original pattern index when a level-0 S element, else -1
}

// MaxSide reports m, the largest pattern side.
func (d *Dict) MaxSide() int { return d.maxSide }

// PatternCount reports the number of patterns.
func (d *Dict) PatternCount() int { return d.np }

// Preprocess builds the dictionary from square patterns in O(M) work.
func Preprocess(c *pram.Ctx, patterns [][][]int32) (*Dict, error) {
	d := &Dict{np: len(patterns)}
	elems := make([]*square, 0, len(patterns))
	seen := map[string]int{}
	for pi, p := range patterns {
		side := len(p)
		if side == 0 {
			return nil, ErrEmptyPattern
		}
		for _, row := range p {
			if len(row) != side {
				return nil, ErrNotSquare
			}
		}
		k := gridKey(p)
		if prev, ok := seen[k]; ok {
			return nil, fmt.Errorf("%w: patterns %d and %d", ErrDuplicate, prev, pi)
		}
		seen[k] = pi
		if side > d.maxSide {
			d.maxSide = side
		}
		elems = append(elems, &square{cells: p, isS: true, pat: int32(pi)})
	}
	if d.maxSide == 0 {
		return d, nil
	}

	var prev *level
	for len(elems) > 0 {
		lv, next := buildLevel(c, elems)
		d.levels = append(d.levels, lv)
		if prev != nil {
			fillMapUp(c, prev)
		}
		if len(d.levels) == 1 {
			d.buildPatternChain(c, lv, elems)
		}
		elems = next
		prev = lv
	}
	if prev != nil {
		prev.pendingMap, prev.pendingSrc = nil, nil // last level shrinks to nothing
	}
	return d, nil
}

// fillMapUp binds the freshly named shrunk elements back to their sources:
// mapUp[δ2_{k+1}(e”, s)] = δ2'_k(e', 2s).
func fillMapUp(c *pram.Ctx, lv *level) {
	maxName := int32(-1)
	for _, e := range lv.pendingMap {
		for _, name := range e.pn {
			if name > maxName {
				maxName = name
			}
		}
	}
	lv.mapUp = make([]int32, maxName+1)
	var work int64
	for i, e := range lv.pendingMap {
		src := lv.pendingSrc[i]
		for s := 1; s <= len(e.cells); s++ {
			lv.mapUp[e.pn[s-1]] = src.pn[2*s-1]
		}
		work += int64(len(e.cells))
	}
	c.AddWork(work)
	c.AddDepth(1)
	lv.pendingMap, lv.pendingSrc = nil, nil
}

// buildPatternChain computes lpPat over the level-0 names: for every named
// square content, the largest original pattern that is a sub-prefix (the
// "diagonal" resolution closing §5).
func (d *Dict) buildPatternChain(c *pram.Ctx, lv *level, elems []*square) {
	patAt := make([]int32, len(lv.sideOf))
	for i := range patAt {
		patAt[i] = -1
	}
	for _, e := range elems {
		if e.pat >= 0 {
			patAt[e.pn[len(e.cells)-1]] = e.pat
		}
	}
	d.lpPat = make([]int32, len(lv.sideOf))
	for i := range d.lpPat {
		d.lpPat[i] = -1
	}
	for _, e := range elems {
		carry := int32(-1)
		for _, name := range e.pn {
			if p := patAt[name]; p >= 0 {
				carry = p
			}
			d.lpPat[name] = carry
		}
	}
	d.nextShort = make([]int32, d.np)
	for _, e := range elems {
		if e.pat < 0 {
			continue
		}
		if len(e.cells) == 1 {
			d.nextShort[e.pat] = -1
			continue
		}
		d.nextShort[e.pat] = d.lpPat[e.pn[len(e.cells)-2]]
	}
	c.AddWork(int64(2*len(lv.sideOf)) + int64(d.np))
	c.AddDepth(int64(log2i(d.maxSide) + 1))
}

func gridKey(p [][]int32) string {
	b := make([]byte, 0, 4*len(p)*len(p)+4)
	for _, row := range p {
		for _, v := range row {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		b = append(b, 0xFF, 0xFE, 0xFD, 0xFC)
	}
	return string(b)
}

// buildLevel constructs every table for one level from the S_k elements and
// returns the S_{k+1} elements.
func buildLevel(c *pram.Ctx, sElems []*square) (*level, []*square) {
	lv := &level{}

	// S' = S ∪ S^r ∪ S^c (stripped variants truncated to squares).
	all := make([]*square, 0, 3*len(sElems))
	all = append(all, sElems...)
	for _, e := range sElems {
		side := len(e.cells)
		if side < 2 {
			continue
		}
		r := make([][]int32, side-1)  // strip top row
		cc := make([][]int32, side-1) // strip left column
		for i := 0; i < side-1; i++ {
			r[i] = e.cells[i+1][:side-1]
			cc[i] = e.cells[i][1:side]
		}
		all = append(all, &square{cells: r, pat: -1}, &square{cells: cc, pat: -1})
	}

	namePrefixes(c, lv, all)
	buildTrunc(c, lv, all)
	buildLpS(c, lv, all)
	buildCandidates(c, lv, sElems, all)
	next := shrink(c, lv, all)
	return lv, next
}

// namePrefixes assigns unified δ2 square-prefix names to every element of
// S' (Lemma 1: row prefix naming, then column prefix naming over row names).
// Names are counter-allocated through chain tables, so equal (content, side)
// ⇒ equal name across elements and variants.
func namePrefixes(c *pram.Ctx, lv *level, all []*square) {
	rowTab := naming.NewTable(c)
	colTab := naming.NewTable(c)
	var rowCounter, colCounter int32
	var work int64
	for _, e := range all {
		side := len(e.cells)
		// rowName[r][j] = name of e.cells[r][0..j]
		rowName := make([][]int32, side)
		for r := 0; r < side; r++ {
			rowName[r] = make([]int32, side)
			prev := naming.Empty
			for j := 0; j < side; j++ {
				key := naming.EncodePair(prev, e.cells[r][j])
				got, ins := rowTab.PutIfAbsent(key, rowCounter)
				if ins {
					rowCounter++
				}
				rowName[r][j] = got
				prev = got
			}
		}
		// δ2 for square side s: chain down column of rowName[.][s-1].
		e.pn = make([]int32, side)
		for s := 1; s <= side; s++ {
			prev := naming.Empty
			for r := 0; r < s; r++ {
				key := naming.EncodePair(prev, rowName[r][s-1])
				got, ins := colTab.PutIfAbsent(key, colCounter)
				if ins {
					colCounter++
					lv.sideOf = append(lv.sideOf, 0)
				}
				prev = got
			}
			e.pn[s-1] = prev
			lv.sideOf[prev] = int32(s)
		}
		work += int64(2 * side * side)
	}
	c.AddWork(work)
	c.AddDepth(int64(log2i(maxSideOf(all)) + 1))
}

// NOTE: the column chains above assign the δ2 name of a side-s prefix from
// the chain over rows 1..s of column-prefix-names at width s; the chain key
// sequence is determined by (content, s), so equal squares share names and
// unequal ones differ — Lemma 1's invariant.

// buildTrunc fills trunc[(δ2(e,b), a)] = δ2(e,a) for a < b (O(side²) per
// element = O(area)).
func buildTrunc(c *pram.Ctx, lv *level, all []*square) {
	tbl := naming.NewTable(c)
	var work int64
	for _, e := range all {
		side := len(e.cells)
		for b := 2; b <= side; b++ {
			for a := 1; a < b; a++ {
				tbl.PutIfAbsent(naming.EncodePair(e.pn[b-1], int32(a)), e.pn[a-1])
			}
		}
		work += int64(side * side)
	}
	lv.trunc = naming.Freeze(c, tbl)
	c.AddWork(work)
	c.AddDepth(1)
}

// buildLpS computes, per δ2 name, the largest S_k-sub-prefix name.
func buildLpS(c *pram.Ctx, lv *level, all []*square) {
	isS := make([]bool, len(lv.sideOf))
	for _, e := range all {
		if !e.isS {
			continue
		}
		for _, name := range e.pn {
			isS[name] = true
		}
	}
	lv.lpS = make([]int32, len(lv.sideOf))
	for i := range lv.lpS {
		lv.lpS[i] = naming.Empty
	}
	for _, e := range all {
		carry := naming.Empty
		for _, name := range e.pn {
			if isS[name] {
				carry = name
			}
			lv.lpS[name] = carry
		}
	}
	c.AddWork(int64(2 * len(lv.sideOf)))
	c.AddDepth(int64(log2i(maxSideOf(all)) + 1))
}

// buildCandidates stages the odd-extension tuples ⟨n_e, n_r, n_c, corner⟩ →
// δ2 name of the (2i+1)-side S-prefix, for every S element and odd side.
// The variants follow the S elements in `all` in insertion order: element j
// of sElems with side ≥ 2 produced variants; locate them by scanning in
// lock-step.
func buildCandidates(c *pram.Ctx, lv *level, sElems, all []*square) {
	// all = sElems ++ variants (r, c per big-enough element, in order).
	vi := len(sElems)
	candA, candB, candC := naming.NewTable(c), naming.NewTable(c), naming.NewTable(c)
	var tCounter, uCounter int32
	var work int64
	for _, e := range sElems {
		side := len(e.cells)
		var varR, varC *square
		if side >= 2 {
			varR, varC = all[vi], all[vi+1]
			vi += 2
		}
		for l := 1; l <= side; l += 2 {
			twoI := l - 1
			nE, nR, nC := naming.Empty, naming.Empty, naming.Empty
			if twoI > 0 {
				nE = e.pn[twoI-1]
				nC = varR.pn[twoI-1] // rows 2..2i+1, cols 1..2i
				nR = varC.pn[twoI-1] // rows 1..2i, cols 2..2i+1
			}
			corner := e.cells[l-1][l-1]
			t, ins := candA.PutIfAbsent(naming.EncodePair(nE, nR), tCounter)
			if ins {
				tCounter++
			}
			u, ins := candB.PutIfAbsent(naming.EncodePair(t, nC), uCounter)
			if ins {
				uCounter++
			}
			candC.PutIfAbsent(naming.EncodePair(u, corner), e.pn[l-1])
			work += 3
		}
	}
	lv.candA = naming.Freeze(c, candA)
	lv.candB = naming.Freeze(c, candB)
	lv.candC = naming.Freeze(c, candC)
	c.AddWork(work)
	c.AddDepth(1)
}

// shrink names the disjoint 2×2 blocks of every S' element and returns the
// shrunk S_{k+1} elements, recording mapUp.
func shrink(c *pram.Ctx, lv *level, all []*square) []*square {
	pairRow, quad := naming.NewTable(c), naming.NewTable(c)
	var blockCounter int32
	var pairCounter int32
	var next []*square
	var work int64
	for _, e := range all {
		side := len(e.cells)
		h := side / 2
		if h == 0 {
			continue
		}
		sh := make([][]int32, h)
		for a := 0; a < h; a++ {
			sh[a] = make([]int32, h)
			for b := 0; b < h; b++ {
				x := blockPair(pairRow, &pairCounter, e.cells[2*a][2*b], e.cells[2*a][2*b+1])
				y := blockPair(pairRow, &pairCounter, e.cells[2*a+1][2*b], e.cells[2*a+1][2*b+1])
				got, ins := quad.PutIfAbsent(naming.EncodePair(x, y), blockCounter)
				if ins {
					blockCounter++
				}
				sh[a][b] = got
			}
		}
		next = append(next, &square{cells: sh, isS: true, pat: -1})
		work += int64(side * side)
	}
	lv.pairRow = naming.Freeze(c, pairRow)
	lv.quad = naming.Freeze(c, quad)
	c.AddWork(work)
	c.AddDepth(1)

	// mapUp needs the next level's δ2 names, which are assigned when the
	// next level is built; stash the pairing for deferred fill.
	lv.pendingMap = next
	lv.pendingSrc = withSideAtLeast(all, 2)
	return next
}

func withSideAtLeast(all []*square, s int) []*square {
	out := make([]*square, 0, len(all))
	for _, e := range all {
		if len(e.cells) >= s {
			out = append(out, e)
		}
	}
	return out
}

func blockPair(tab *naming.Table, counter *int32, a, b int32) int32 {
	got, ins := tab.PutIfAbsent(naming.EncodePair(a, b), *counter)
	if ins {
		*counter++
	}
	return got
}

func maxSideOf(all []*square) int {
	m := 1
	for _, e := range all {
		if len(e.cells) > m {
			m = len(e.cells)
		}
	}
	return m
}

func log2i(x int) int {
	b := 0
	for 1<<b < x {
		b++
	}
	return b
}
