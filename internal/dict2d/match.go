package dict2d

import (
	"pardict/internal/naming"
	"pardict/internal/pram"
)

// Result holds the per-cell output of 2-D dictionary matching.
type Result struct {
	// Side[i][j] is the side of the largest dictionary square-prefix whose
	// top-left corner matches at (i, j).
	Side [][]int32
	// Name[i][j] is that prefix's unified name (naming.Empty when Side 0).
	Name [][]int32
	// Pat[i][j] is the index of the largest full pattern matching at (i, j),
	// or -1.
	Pat [][]int32
}

// Match runs 2-D dictionary matching on a rectangular text (Theorem 6:
// O(n·log m) work, O(log m) depth).
func (d *Dict) Match(c *pram.Ctx, text [][]int32) (*Result, error) {
	rows := len(text)
	cols := 0
	if rows > 0 {
		cols = len(text[0])
		for _, row := range text {
			if len(row) != cols {
				return nil, ErrRagged
			}
		}
	}
	r := &Result{
		Side: makeGrid(c, rows, cols, 0),
		Name: makeGrid(c, rows, cols, naming.Empty),
		Pat:  makeGrid(c, rows, cols, -1),
	}
	if rows == 0 || cols == 0 || d.maxSide == 0 {
		return r, nil
	}

	grids := d.spawnGrids(c, text, rows, cols)
	d.unwind(c, grids, r, rows, cols)

	c.For(rows, func(i int) {
		for j := 0; j < cols; j++ {
			if name := r.Name[i][j]; name != naming.Empty {
				r.Pat[i][j] = d.lpPat[name]
			}
		}
	})
	c.AddWork(cellWork(rows, cols))
	return r, nil
}

// cellWork is the per-phase work of a grid pass beyond the row-level charge
// the parallel-for already made: rows·cols cells total.
func cellWork(rows, cols int) int64 {
	return int64(rows) * int64(cols-1)
}

func makeGrid(c *pram.Ctx, rows, cols int, v int32) [][]int32 {
	g := make([][]int32, rows)
	c.For(rows, func(i int) {
		g[i] = make([]int32, cols)
		for j := range g[i] {
			g[i][j] = v
		}
	})
	return g
}

// spawnGrids computes the level-k block-name grid at every cell: grids[k][i][j]
// names the 2^k × 2^k text block cornered at (i, j), or naming.None.
func (d *Dict) spawnGrids(c *pram.Ctx, text [][]int32, rows, cols int) [][][]int32 {
	grids := make([][][]int32, len(d.levels))
	grids[0] = text
	for k := 1; k < len(d.levels); k++ {
		if c.Canceled() {
			break
		}
		lv := d.levels[k-1]
		g := 1 << uint(k-1)
		prev := grids[k-1]
		cur := make([][]int32, rows)
		c.For(rows, func(i int) {
			cur[i] = make([]int32, cols)
			for j := 0; j < cols; j++ {
				cur[i][j] = quadName(lv, prev, i, j, g, rows, cols)
			}
		})
		c.AddWork(cellWork(rows, cols))
		grids[k] = cur
	}
	return grids
}

func quadName(lv *level, prev [][]int32, i, j, g, rows, cols int) int32 {
	if i+g >= rows || j+g >= cols {
		return naming.None
	}
	a, b := prev[i][j], prev[i][j+g]
	cc, dd := prev[i+g][j], prev[i+g][j+g]
	if a == naming.None || b == naming.None || cc == naming.None || dd == naming.None {
		return naming.None
	}
	x, ok := lv.pairRow.Get(naming.EncodePair(a, b))
	if !ok {
		return naming.None
	}
	y, ok := lv.pairRow.Get(naming.EncodePair(cc, dd))
	if !ok {
		return naming.None
	}
	return lv.quad.Lookup(naming.EncodePair(x, y))
}

// unwind descends the levels; entering level k, r.Side/r.Name hold the
// largest S_{k+1}-prefix per cell (level-(k+1) units/names) and leave with
// the largest S_k-prefix.
func (d *Dict) unwind(c *pram.Ctx, grids [][][]int32, r *Result, rows, cols int) {
	for k := len(d.levels) - 1; k >= 0; k-- {
		if c.Canceled() {
			break
		}
		lv := d.levels[k]
		g := 1 << uint(k)
		grid := grids[k]
		newSide := make([][]int32, rows)
		newName := make([][]int32, rows)
		c.For(rows, func(i int) {
			newSide[i] = make([]int32, cols)
			newName[i] = make([]int32, cols)
			for j := 0; j < cols; j++ {
				s, n := d.extendCell(lv, grid, r, i, j, g, rows, cols)
				newSide[i][j] = s
				newName[i][j] = n
			}
		})
		c.AddWork(cellWork(rows, cols))
		r.Side, r.Name = newSide, newName
	}
	// Sides are now in level-0 units = original characters.
}

// extendCell implements the Step 4b case analysis for one cell.
func (d *Dict) extendCell(lv *level, grid [][]int32, r *Result, i, j, g, rows, cols int) (int32, int32) {
	twoI := 2 * int(r.Side[i][j])
	alpha := naming.Empty
	if twoI > 0 {
		alpha = lv.mapUp[r.Name[i][j]]
	}

	// Default: largest S_k-sub-prefix of α (Case 1 / the "α stands" case).
	bestSide, bestName := int32(0), naming.Empty
	if alpha != naming.Empty {
		if lp := lv.lpS[alpha]; lp != naming.Empty {
			bestName = lp
			bestSide = lv.sideOf[lp]
		}
	}

	// Odd candidate of side 2i+1 (Case 2).
	ci, cj := i+twoI*g, j+twoI*g
	if ci >= rows || cj >= cols {
		return bestSide, bestName
	}
	corner := grid[ci][cj]
	if corner == naming.None {
		return bestSide, bestName
	}
	nE, nR, nC := naming.Empty, naming.Empty, naming.Empty
	if twoI > 0 {
		nE = alpha
		var ok bool
		if nR, ok = d.alphaTrunc(lv, r, i, j+g, twoI, rows, cols); !ok {
			return bestSide, bestName
		}
		if nC, ok = d.alphaTrunc(lv, r, i+g, j, twoI, rows, cols); !ok {
			return bestSide, bestName
		}
	}
	t, ok := lv.candA.Get(naming.EncodePair(nE, nR))
	if !ok {
		return bestSide, bestName
	}
	u, ok := lv.candB.Get(naming.EncodePair(t, nC))
	if !ok {
		return bestSide, bestName
	}
	if v, ok := lv.candC.Get(naming.EncodePair(u, corner)); ok {
		return int32(twoI + 1), v
	}
	return bestSide, bestName
}

// alphaTrunc returns the unified name of the side-twoI square cornered at
// neighbour cell (i, j), derived by truncating that cell's α value; ok is
// false when no such S'-prefix matches there.
func (d *Dict) alphaTrunc(lv *level, r *Result, i, j, twoI int, rows, cols int) (int32, bool) {
	if i >= rows || j >= cols {
		return naming.Empty, false
	}
	side := 2 * int(r.Side[i][j])
	if side < twoI {
		return naming.Empty, false
	}
	name := lv.mapUp[r.Name[i][j]]
	if side == twoI {
		return name, true
	}
	v, ok := lv.trunc.Get(naming.EncodePair(name, int32(twoI)))
	return v, ok
}

// AllMatches appends to dst every pattern whose corner matches at cell
// (i, j) of a Result, largest side first (output-sensitive expansion via the
// sub-prefix chain).
func (d *Dict) AllMatches(r *Result, i, j int, dst []int32) []int32 {
	for p := r.Pat[i][j]; p >= 0; p = d.nextShort[p] {
		dst = append(dst, p)
	}
	return dst
}
