package dict2d

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pardict/internal/naive"
	"pardict/internal/naming"
)

// TestQuickEqualsNaive: arbitrary 2-D instances equal the oracle.
func TestQuickEqualsNaive(t *testing.T) {
	f := func(seed int64, npRaw, sigmaRaw, sideRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := 1 + int(sigmaRaw%3)
		np := 1 + int(npRaw%4)
		seen := map[string]bool{}
		var pats [][][]int32
		for attempts := 0; len(pats) < np && attempts < 100; attempts++ {
			side := 1 + rng.Intn(5)
			p := make([][]int32, side)
			for a := range p {
				p[a] = make([]int32, side)
				for b := range p[a] {
					p[a][b] = int32(rng.Intn(sigma))
				}
			}
			k := gridKey(p)
			if seen[k] {
				continue
			}
			seen[k] = true
			pats = append(pats, p)
		}
		rows, cols := 1+int(sideRaw%12), 1+rng.Intn(12)
		text := make([][]int32, rows)
		for i := range text {
			text[i] = make([]int32, cols)
			for j := range text[i] {
				text[i][j] = int32(rng.Intn(sigma))
			}
		}
		c := ctx()
		d, err := Preprocess(c, pats)
		if err != nil {
			return false
		}
		r, err := d.Match(c, text)
		if err != nil {
			return false
		}
		wantSide, _ := naive.LongestSquarePrefix2D(pats, text)
		wantPat := naive.LargestFullMatch2D(pats, text)
		for i := range text {
			for j := range text[i] {
				if r.Side[i][j] != wantSide[i][j] || r.Pat[i][j] != wantPat[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestUnifiedNamesAcrossVariants: the square-prefix naming must identify
// equal (content, side) pairs across patterns (Lemma 1's invariant observed
// through match results: planting the same sub-square in two patterns makes
// their prefixes share match behaviour).
func TestUnifiedNamesAcrossVariants(t *testing.T) {
	// Pattern B's top-left 2x2 equals pattern A's top-left 2x2; matching a
	// text equal to that 2x2 must report side 2 with the same name.
	a := [][]int32{
		{1, 2, 9},
		{3, 4, 9},
		{9, 9, 9},
	}
	b := [][]int32{
		{1, 2},
		{3, 4},
	}
	c := ctx()
	d, err := Preprocess(c, [][][]int32{a, b})
	if err != nil {
		t.Fatal(err)
	}
	text := [][]int32{{1, 2}, {3, 4}}
	r, err := d.Match(c, text)
	if err != nil {
		t.Fatal(err)
	}
	if r.Side[0][0] != 2 {
		t.Fatalf("side = %d", r.Side[0][0])
	}
	if r.Pat[0][0] != 1 { // pattern b fully matches
		t.Fatalf("pat = %d", r.Pat[0][0])
	}
	if r.Name[0][0] == naming.Empty {
		t.Fatal("name missing")
	}
}

// TestCheckerboardAdversarial: alternating textures where every cell looks
// locally alike — worst case for the odd-extension disambiguation.
func TestCheckerboardAdversarial(t *testing.T) {
	mk := func(side, phase int) [][]int32 {
		p := make([][]int32, side)
		for i := range p {
			p[i] = make([]int32, side)
			for j := range p[i] {
				p[i][j] = int32((i + j + phase) % 2)
			}
		}
		return p
	}
	for _, side := range []int{2, 3, 5, 7, 8} {
		pats := [][][]int32{mk(side, 0), mk(side, 1)}
		text := mk(3*side, 0)
		check(t, pats, text)
	}
}

// TestManySizesOnePattern: one pattern per side 1..12 with nested content,
// stressing lpS chains (smaller patterns are prefixes of larger).
func TestManySizesOnePattern(t *testing.T) {
	big := make([][]int32, 12)
	rng := rand.New(rand.NewSource(77))
	for i := range big {
		big[i] = make([]int32, 12)
		for j := range big[i] {
			big[i][j] = int32(rng.Intn(3))
		}
	}
	var pats [][][]int32
	for s := 1; s <= 12; s++ {
		p := make([][]int32, s)
		for i := 0; i < s; i++ {
			p[i] = big[i][:s]
		}
		pats = append(pats, p)
	}
	text := make([][]int32, 20)
	for i := range text {
		text[i] = make([]int32, 20)
		for j := range text[i] {
			text[i][j] = int32(rng.Intn(3))
		}
	}
	// Plant the big pattern so all 12 nested prefixes match at one corner.
	for i := 0; i < 12; i++ {
		copy(text[4+i][5:], big[i])
	}
	check(t, pats, text)
}
