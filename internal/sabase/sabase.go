// Package sabase is a suffix-array-based dictionary matcher used as the
// log M-dependent comparator (the role [AF91]'s suffix-tree methods play in
// the paper's comparisons, §1): per text position, the longest dictionary
// prefix is found by O(log M)-probe binary searches over the sorted suffixes
// of the concatenated dictionary.
//
// Its per-position cost grows with the total dictionary size M; the paper's
// engines depend only on the longest pattern m. Experiment E3 measures
// exactly this contrast.
package sabase

import (
	"sort"
)

// Matcher is a preprocessed suffix-array dictionary. Immutable after New.
type Matcher struct {
	concat []int32 // patterns joined with separators
	sa     []int32 // sorted suffix start offsets (only pattern-prefix starts)
	starts []int32 // start offset of each pattern in concat
	patAt  []int32 // concat offset -> pattern index
	maxLen int
}

// New builds the matcher. O(M log² M) construction (sort with O(M)-cost
// comparisons is avoided by comparing lazily; adequate for a baseline).
func New(patterns [][]int32) *Matcher {
	m := &Matcher{}
	for _, p := range patterns {
		if len(p) > m.maxLen {
			m.maxLen = len(p)
		}
	}
	for pi, p := range patterns {
		m.starts = append(m.starts, int32(len(m.concat)))
		for range p {
			m.patAt = append(m.patAt, int32(pi))
		}
		m.concat = append(m.concat, p...)
		m.patAt = append(m.patAt, -1)
		m.concat = append(m.concat, -1) // separator, less than any symbol
	}
	// The dictionary-matching searches only ever compare against whole
	// patterns anchored at their starts, so the "suffix array" needs only
	// the pattern start offsets, sorted by the pattern content.
	m.sa = append([]int32(nil), m.starts...)
	sort.Slice(m.sa, func(a, b int) bool {
		return m.lessFrom(m.sa[a], m.sa[b])
	})
	return m
}

// lessFrom lexicographically compares the separator-terminated strings
// starting at offsets a and b.
func (m *Matcher) lessFrom(a, b int32) bool {
	for {
		x, y := m.concat[a], m.concat[b]
		if x != y {
			return x < y
		}
		if x == -1 {
			return false // equal (cannot happen for distinct patterns)
		}
		a++
		b++
	}
}

// MaxLen reports the longest pattern length.
func (m *Matcher) MaxLen() int { return m.maxLen }

// LongestMatch returns, per text position, the index of the longest pattern
// matching there, or -1. Each position performs O(m·log κ) comparisons
// (binary searches over the κ sorted patterns): the per-position cost grows
// with the dictionary, unlike the shrink-and-spawn engines.
func (m *Matcher) LongestMatch(text []int32) []int32 {
	n := len(text)
	out := make([]int32, n)
	for j := range out {
		out[j] = -1
	}
	if len(m.sa) == 0 {
		return out
	}
	for j := 0; j < n; j++ {
		out[j] = m.longestAt(text, j)
	}
	return out
}

// longestAt finds the longest pattern matching at position j: binary search
// narrows the sorted pattern range symbol by symbol; every time the range
// contains a pattern that ends at the current depth, it is recorded.
func (m *Matcher) longestAt(text []int32, j int) int32 {
	lo, hi := 0, len(m.sa) // candidate range in sa
	best := int32(-1)
	for depth := 0; j+depth < len(text); depth++ {
		sym := text[j+depth]
		if sym < 0 {
			break
		}
		// Narrow [lo, hi) to patterns whose symbol at depth equals sym.
		lo = lo + sort.Search(hi-lo, func(i int) bool {
			return m.at(m.sa[lo+i], depth) >= sym
		})
		hi = lo + sort.Search(hi-lo, func(i int) bool {
			return m.at(m.sa[lo+i], depth) > sym
		})
		if lo == hi {
			break
		}
		// A pattern of length depth+1 is in range iff the first candidate
		// ends right after this symbol (separator at depth+1 sorts lowest).
		if m.at(m.sa[lo], depth+1) == -1 {
			best = m.patAt[m.sa[lo]]
		}
	}
	return best
}

func (m *Matcher) at(start int32, depth int) int32 {
	return m.concat[int(start)+depth]
}
