package sabase

import (
	"math/rand"
	"testing"

	"pardict/internal/naive"
	"pardict/internal/workload"
)

func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		sigma := 2 + rng.Intn(4)
		np := 1 + rng.Intn(10)
		pats := workload.Dictionary(int64(trial), np, 1, 12, sigma)
		text := workload.Text(int64(trial)+1000, rng.Intn(100), sigma)
		m := New(pats)
		got := m.LongestMatch(text)
		want := naive.LongestPattern(pats, text)
		for j := range text {
			if got[j] != want[j] {
				t.Fatalf("trial %d pos %d: got %d want %d", trial, j, got[j], want[j])
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	m := New(nil)
	got := m.LongestMatch([]int32{1, 2, 3})
	for _, v := range got {
		if v != -1 {
			t.Fatal("matched with empty dictionary")
		}
	}
	if m.MaxLen() != 0 {
		t.Fatalf("maxLen = %d", m.MaxLen())
	}
}

func TestNested(t *testing.T) {
	pats := workload.NestedDictionary(5)
	text := make([]int32, 9)
	m := New(pats)
	got := m.LongestMatch(text)
	want := naive.LongestPattern(pats, text)
	for j := range text {
		if got[j] != want[j] {
			t.Fatalf("pos %d: got %d want %d", j, got[j], want[j])
		}
	}
}

func TestNegativeTextSymbols(t *testing.T) {
	m := New([][]int32{{1, 2}})
	got := m.LongestMatch([]int32{1, -5, 1, 2})
	want := []int32{-1, -1, 0, -1}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
