// Package naive provides brute-force reference matchers. They are the
// correctness oracles for the engines: O(n·M) (and worse) time, trivially
// correct by inspection.
package naive

// LongestPrefix returns, for each text position, the length of the longest
// prefix of any pattern that matches there, and the index of one pattern
// having that prefix (-1-filled when nothing matches).
func LongestPrefix(patterns [][]int32, text []int32) (lens []int32, pat []int32) {
	n := len(text)
	lens = make([]int32, n)
	pat = make([]int32, n)
	for j := range pat {
		pat[j] = -1
	}
	for j := 0; j < n; j++ {
		for pi, p := range patterns {
			l := 0
			for l < len(p) && j+l < n && p[l] == text[j+l] {
				l++
			}
			if int32(l) > lens[j] {
				lens[j] = int32(l)
				pat[j] = int32(pi)
			}
		}
	}
	return lens, pat
}

// LongestPattern returns, for each text position, the index of the longest
// pattern that fully matches there, or -1. Ties cannot occur for distinct
// patterns of equal content; among equal-length candidates the result is the
// unique full match of that length.
func LongestPattern(patterns [][]int32, text []int32) []int32 {
	n := len(text)
	out := make([]int32, n)
	for j := range out {
		out[j] = -1
	}
	for j := 0; j < n; j++ {
		best := -1
		for pi, p := range patterns {
			if len(p) > n-j || (best >= 0 && len(p) <= len(patterns[best])) {
				continue
			}
			ok := true
			for l := range p {
				if p[l] != text[j+l] {
					ok = false
					break
				}
			}
			if ok {
				best = pi
			}
		}
		out[j] = int32(best)
	}
	return out
}

// AllMatches returns, for each text position, the indices of all patterns
// fully matching there, in decreasing length order.
func AllMatches(patterns [][]int32, text []int32) [][]int32 {
	n := len(text)
	out := make([][]int32, n)
	order := make([]int, len(patterns))
	for i := range order {
		order[i] = i
	}
	// Sort by decreasing length (stable insertion; pattern counts are small
	// in oracle usage).
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && len(patterns[order[k]]) > len(patterns[order[k-1]]); k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	for j := 0; j < n; j++ {
		for _, pi := range order {
			p := patterns[pi]
			if len(p) > n-j {
				continue
			}
			ok := true
			for l := range p {
				if p[l] != text[j+l] {
					ok = false
					break
				}
			}
			if ok {
				out[j] = append(out[j], int32(pi))
			}
		}
	}
	return out
}

// LongestSquarePrefix2D returns, for each text cell (i,j) of an r×c text,
// the largest s such that some pattern's top-left s×s square matches with
// its corner at (i,j), along with one such pattern's index.
func LongestSquarePrefix2D(patterns [][][]int32, text [][]int32) (size [][]int32, pat [][]int32) {
	r := len(text)
	c := 0
	if r > 0 {
		c = len(text[0])
	}
	size = make([][]int32, r)
	pat = make([][]int32, r)
	for i := range size {
		size[i] = make([]int32, c)
		pat[i] = make([]int32, c)
		for j := range pat[i] {
			pat[i][j] = -1
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			for pi, p := range patterns {
				s := 0
				for s < len(p) && i+s < r && j+s < c {
					ok := true
					// check new border row/col of the (s+1)×(s+1) square
					for t := 0; t <= s; t++ {
						if p[s][t] != text[i+s][j+t] || p[t][s] != text[i+t][j+s] {
							ok = false
							break
						}
					}
					if !ok {
						break
					}
					s++
				}
				if int32(s) > size[i][j] {
					size[i][j] = int32(s)
					pat[i][j] = int32(pi)
				}
			}
		}
	}
	return size, pat
}

// LargestFullMatch2D returns, for each cell, the index of the pattern with
// the largest side that fully matches with its top-left corner there, or -1.
func LargestFullMatch2D(patterns [][][]int32, text [][]int32) [][]int32 {
	r := len(text)
	c := 0
	if r > 0 {
		c = len(text[0])
	}
	out := make([][]int32, r)
	for i := range out {
		out[i] = make([]int32, c)
		for j := range out[i] {
			out[i][j] = -1
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			best := -1
			for pi, p := range patterns {
				s := len(p)
				if i+s > r || j+s > c {
					continue
				}
				if best >= 0 && s <= len(patterns[best]) {
					continue
				}
				ok := true
				for a := 0; a < s && ok; a++ {
					for b := 0; b < s; b++ {
						if p[a][b] != text[i+a][j+b] {
							ok = false
							break
						}
					}
				}
				if ok {
					best = pi
				}
			}
			out[i][j] = int32(best)
		}
	}
	return out
}

// LongestCubePrefix3D returns, for each cell (z,y,x) of a cube text, the
// largest s such that some pattern's corner s×s×s cube matches there, plus
// one such pattern's index.
func LongestCubePrefix3D(patterns [][][][]int32, text [][][]int32) (size [][][]int32, pat [][][]int32) {
	zd := len(text)
	size = make([][][]int32, zd)
	pat = make([][][]int32, zd)
	for z := range text {
		size[z] = make([][]int32, len(text[z]))
		pat[z] = make([][]int32, len(text[z]))
		for y := range text[z] {
			size[z][y] = make([]int32, len(text[z][y]))
			pat[z][y] = make([]int32, len(text[z][y]))
			for x := range pat[z][y] {
				pat[z][y][x] = -1
			}
		}
	}
	fits := func(p [][][]int32, z, y, x, s int) bool {
		for a := 0; a < s; a++ {
			if z+a >= zd || y+s > len(text[z+a]) {
				return false
			}
			for b := 0; b < s; b++ {
				if x+s > len(text[z+a][y+b]) {
					return false
				}
				for c := 0; c < s; c++ {
					if p[a][b][c] != text[z+a][y+b][x+c] {
						return false
					}
				}
			}
		}
		return true
	}
	for z := 0; z < zd; z++ {
		for y := range text[z] {
			for x := range text[z][y] {
				for pi, p := range patterns {
					s := int(size[z][y][x])
					for s < len(p) && fits(p, z, y, x, s+1) {
						s++
						size[z][y][x] = int32(s)
						pat[z][y][x] = int32(pi)
					}
				}
			}
		}
	}
	return size, pat
}

// LargestFullMatch3D returns, per cell, the index of the largest-side
// pattern cube fully matching with its corner there, or -1.
func LargestFullMatch3D(patterns [][][][]int32, text [][][]int32) [][][]int32 {
	zd := len(text)
	out := make([][][]int32, zd)
	for z := range out {
		out[z] = make([][]int32, len(text[z]))
		for y := range out[z] {
			out[z][y] = make([]int32, len(text[z][y]))
			for x := range out[z][y] {
				out[z][y][x] = -1
			}
		}
	}
	for z := 0; z < zd; z++ {
		for y := range text[z] {
			for x := range text[z][y] {
				best := -1
				for pi, p := range patterns {
					s := len(p)
					if best >= 0 && s <= len(patterns[best]) {
						continue
					}
					ok := true
					for a := 0; a < s && ok; a++ {
						if z+a >= zd || y+s > len(text[z+a]) {
							ok = false
							break
						}
						for b := 0; b < s && ok; b++ {
							if x+s > len(text[z+a][y+b]) {
								ok = false
								break
							}
							for c := 0; c < s; c++ {
								if p[a][b][c] != text[z+a][y+b][x+c] {
									ok = false
									break
								}
							}
						}
					}
					if ok {
						best = pi
					}
				}
				out[z][y][x] = int32(best)
			}
		}
	}
	return out
}
