package naive

import "testing"

func enc(s string) []int32 {
	out := make([]int32, len(s))
	for i := range s {
		out[i] = int32(s[i])
	}
	return out
}

func TestLongestPrefix(t *testing.T) {
	pats := [][]int32{enc("abc"), enc("abd"), enc("b")}
	lens, pat := LongestPrefix(pats, enc("abdxb"))
	wantLens := []int32{3, 1, 0, 0, 1}
	for i := range wantLens {
		if lens[i] != wantLens[i] {
			t.Fatalf("lens = %v, want %v", lens, wantLens)
		}
	}
	if pat[0] != 1 { // "abd" matched fully
		t.Fatalf("pat[0] = %d", pat[0])
	}
	if pat[3] != -1 {
		t.Fatalf("pat[3] = %d", pat[3])
	}
}

func TestLongestPattern(t *testing.T) {
	pats := [][]int32{enc("ab"), enc("abc"), enc("b")}
	got := LongestPattern(pats, enc("abcb"))
	want := []int32{1, 2, -1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestAllMatchesOrderedByLength(t *testing.T) {
	pats := [][]int32{enc("a"), enc("abc"), enc("ab")}
	got := AllMatches(pats, enc("abc"))
	if len(got[0]) != 3 {
		t.Fatalf("got %v", got[0])
	}
	// Decreasing length: abc (1), ab (2), a (0).
	want := []int32{1, 2, 0}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("got %v want %v", got[0], want)
		}
	}
	if got[1] != nil || len(got[2]) != 0 {
		t.Fatalf("unexpected matches: %v", got)
	}
}

func grid(rows ...string) [][]int32 {
	out := make([][]int32, len(rows))
	for i, r := range rows {
		out[i] = enc(r)
	}
	return out
}

func TestLongestSquarePrefix2D(t *testing.T) {
	pats := [][][]int32{grid("ab", "cd")}
	size, pat := LongestSquarePrefix2D(pats, grid("abx", "cdx", "xxx"))
	if size[0][0] != 2 || pat[0][0] != 0 {
		t.Fatalf("size=%d pat=%d", size[0][0], pat[0][0])
	}
	if size[0][1] != 0 || pat[0][1] != -1 {
		t.Fatalf("cell (0,1): size=%d pat=%d", size[0][1], pat[0][1])
	}
	// 'a' alone matches the 1x1 prefix wherever an 'a' occurs.
	size2, _ := LongestSquarePrefix2D(pats, grid("xa", "xx"))
	if size2[0][1] != 1 {
		t.Fatalf("1x1 prefix: %d", size2[0][1])
	}
}

func TestLargestFullMatch2D(t *testing.T) {
	pats := [][][]int32{grid("a"), grid("ab", "cd")}
	got := LargestFullMatch2D(pats, grid("ab", "cd"))
	if got[0][0] != 1 {
		t.Fatalf("got %v", got)
	}
	if got[0][1] != -1 || got[1][0] != -1 {
		t.Fatalf("got %v", got)
	}
	empty := LargestFullMatch2D(nil, grid("ab"))
	if empty[0][0] != -1 {
		t.Fatal("empty dictionary matched")
	}
}

func TestEmptyInputs(t *testing.T) {
	lens, pat := LongestPrefix(nil, enc("abc"))
	for i := range lens {
		if lens[i] != 0 || pat[i] != -1 {
			t.Fatal("empty dict must not match")
		}
	}
	if got := LongestPattern([][]int32{enc("a")}, nil); len(got) != 0 {
		t.Fatal("empty text")
	}
	s, p := LongestSquarePrefix2D(nil, nil)
	if len(s) != 0 || len(p) != 0 {
		t.Fatal("empty 2D")
	}
}
