package pardict

import (
	"context"

	"pardict/internal/alpha"
	"pardict/internal/dynamic"
	"pardict/internal/obs"
)

// PatternID identifies a pattern inside a DynamicMatcher. IDs are assigned
// by Insert and remain stable across internal rebuilds.
type PatternID int32

// DynamicMatcher is the fully dynamic dictionary of §6 (Theorems 7–10):
// patterns can be inserted and deleted on-line, and Match always reflects
// exactly the live set. Insert/Delete must be serialized by the caller;
// Match performs no mutation.
type DynamicMatcher struct {
	cfg *config
	enc *alpha.Encoder
	d   *dynamic.Dict
}

// NewDynamicMatcher returns an empty dynamic dictionary.
func NewDynamicMatcher(opts ...Option) (*DynamicMatcher, error) {
	cfg := buildConfig(opts)
	enc, err := cfg.encoder()
	if err != nil {
		return nil, err
	}
	return &DynamicMatcher{cfg: cfg, enc: enc, d: dynamic.New()}, nil
}

// Insert adds pattern p in O(λ·log M) work and returns its id.
func (m *DynamicMatcher) Insert(p []byte) (PatternID, error) {
	e, err := m.enc.EncodePattern(p)
	if err != nil {
		return 0, err
	}
	var id int32
	obs.Do(nil, func(lctx context.Context) {
		ctx := m.cfg.newCtx()
		ctx.SetLabelContext(lctx)
		id, err = m.d.Insert(ctx, e)
	}, "engine", "dynamic", "op", "insert")
	return PatternID(id), err
}

// Delete removes pattern p (by content) in O(λ·log M) amortized work.
func (m *DynamicMatcher) Delete(p []byte) error {
	e, err := m.enc.EncodePattern(p)
	if err != nil {
		return err
	}
	obs.Do(nil, func(lctx context.Context) {
		ctx := m.cfg.newCtx()
		ctx.SetLabelContext(lctx)
		err = m.d.Delete(ctx, e)
	}, "engine", "dynamic", "op", "delete")
	return err
}

// Has reports whether p is currently in the dictionary.
func (m *DynamicMatcher) Has(p []byte) bool {
	e, err := m.enc.EncodePattern(p)
	if err != nil {
		return false
	}
	return m.d.Has(e)
}

// Len reports the number of live patterns.
func (m *DynamicMatcher) Len() int { return m.d.LiveCount() }

// Size reports M, the total size of live patterns.
func (m *DynamicMatcher) Size() int { return m.d.LiveSize() }

// DynamicMatches is the per-position result of a dynamic Match.
type DynamicMatches struct {
	pat   []int32
	plen  []int32
	stats Stats
}

// Match scans text against the live dictionary (Theorem 8/10: O(n·log M)
// work, O(log M) depth).
func (m *DynamicMatcher) Match(text []byte) *DynamicMatches {
	r, _ := m.MatchContext(context.Background(), text)
	return r
}

// MatchContext is Match under a context: cancellation aborts the scan within
// one parallel phase and returns an error wrapping ErrCanceled and the
// context's cause. The dictionary is not mutated by matching, so a canceled
// match has no effect on subsequent calls.
func (m *DynamicMatcher) MatchContext(gctx context.Context, text []byte) (*DynamicMatches, error) {
	ctx := m.cfg.newCtxFor(gctx)
	var r *dynamic.Result
	obs.Do(gctx, func(lctx context.Context) {
		ctx.SetLabelContext(lctx)
		r = m.d.Match(ctx, m.enc.Encode(text))
	}, "engine", "dynamic", "op", "match")
	if err := canceledErr(ctx); err != nil {
		return nil, err
	}
	return &DynamicMatches{pat: r.Pat, plen: r.Len, stats: statsOf(ctx)}, nil
}

// SchedulerStats snapshots the counters of the scheduler this matcher
// executes on; see Matcher.SchedulerStats.
func (m *DynamicMatcher) SchedulerStats() SchedulerStats {
	return schedulerStatsOf(m.cfg.schedulerPool())
}

// Len reports the text length covered.
func (r *DynamicMatches) Len() int { return len(r.pat) }

// Longest returns the id of the longest live pattern starting at position
// i, and whether any matches.
func (r *DynamicMatches) Longest(i int) (PatternID, bool) {
	p := r.pat[i]
	return PatternID(p), p >= 0
}

// PrefixLen reports the longest live-dictionary prefix length at position i
// (the §6 prefix-matching output, Theorems 7/9).
func (r *DynamicMatches) PrefixLen(i int) int { return int(r.plen[i]) }

// Stats reports the instrumented cost of the Match call.
func (r *DynamicMatches) Stats() Stats { return r.stats }
