package pardict

import (
	"context"
	"io"

	"pardict/internal/obs"
)

// StreamMatcher scans an unbounded input incrementally: feed it chunks of
// any size and it emits each finalized match exactly once, with absolute
// stream offsets. A position's longest match is determined by the next
// MaxLen bytes, so the matcher holds back the trailing MaxLen−1 bytes of
// what it has seen until more input (or Close) arrives.
//
// A StreamMatcher is single-stream state; use one per stream (the underlying
// Matcher is shared and immutable). Not safe for concurrent use.
type StreamMatcher struct {
	m      *Matcher
	emit   func(pos int64, pattern int)
	carry  []byte
	offset int64 // absolute stream offset of carry[0]
	closed bool
}

// Stream returns a new streaming scanner over m's dictionary. Matches are
// reported to emit as (absolute start offset, pattern index), in increasing
// offset order; emit receives only the longest pattern per position (use
// Matcher.All on a block-level Matches if the full set is needed).
func (m *Matcher) Stream(emit func(pos int64, pattern int)) *StreamMatcher {
	return &StreamMatcher{m: m, emit: emit}
}

// Feed appends chunk to the stream and emits every match that is now final.
// It may be called with chunks of any size, including empty.
func (s *StreamMatcher) Feed(chunk []byte) error {
	return s.FeedContext(context.Background(), chunk)
}

// FeedContext is Feed under a context. On cancellation it returns an error
// wrapping ErrCanceled before emitting anything or advancing the stream: the
// fed bytes are retained, so the stream stays consistent and the caller may
// resume by calling FeedContext again (an empty chunk reprocesses what is
// buffered).
func (s *StreamMatcher) FeedContext(gctx context.Context, chunk []byte) error {
	if s.closed {
		return io.ErrClosedPipe
	}
	s.carry = append(s.carry, chunk...)
	hold := s.m.MaxLen() - 1
	if len(s.carry) <= hold {
		return nil
	}
	final := len(s.carry) - hold // positions [0, final) are finalized
	var r *Matches
	var err error
	obs.Do(gctx, func(lctx context.Context) {
		r, err = s.m.MatchContext(lctx, s.carry)
	}, "op", "stream")
	if err != nil {
		return err
	}
	for j := 0; j < final; j++ {
		if p, ok := r.Longest(j); ok {
			s.emit(s.offset+int64(j), p)
		}
	}
	s.offset += int64(final)
	s.carry = shrinkCarry(s.carry, final)
	return nil
}

// shrinkCarry drops the finalized prefix of the carry buffer. Reslicing in
// place would pin the largest buffer any Feed ever produced (the backing
// array only ever grows); once the live tail is a small fraction of the
// capacity, copy it into a right-sized allocation instead.
func shrinkCarry(carry []byte, final int) []byte {
	rem := len(carry) - final
	if cap(carry) > 64 && cap(carry) > 4*rem {
		fresh := make([]byte, rem)
		copy(fresh, carry[final:])
		return fresh
	}
	return append(carry[:0], carry[final:]...)
}

// Close flushes the held-back tail, emitting its matches, and invalidates
// the stream.
func (s *StreamMatcher) Close() error {
	return s.CloseContext(context.Background())
}

// CloseContext is Close under a context. On cancellation the stream is NOT
// invalidated: the tail stays buffered and no matches are emitted, so the
// caller may retry CloseContext (or keep feeding).
func (s *StreamMatcher) CloseContext(gctx context.Context) error {
	if s.closed {
		return nil
	}
	if len(s.carry) == 0 {
		s.closed = true
		return nil
	}
	var r *Matches
	var err error
	obs.Do(gctx, func(lctx context.Context) {
		r, err = s.m.MatchContext(lctx, s.carry)
	}, "op", "stream")
	if err != nil {
		return err
	}
	s.closed = true
	for j := 0; j < r.Len(); j++ {
		if p, ok := r.Longest(j); ok {
			s.emit(s.offset+int64(j), p)
		}
	}
	s.offset += int64(len(s.carry))
	s.carry = nil
	return nil
}

// Offset reports the absolute offset of the next unfinalized position.
func (s *StreamMatcher) Offset() int64 { return s.offset }

// Pending reports how many bytes are currently held back awaiting
// finalization.
func (s *StreamMatcher) Pending() int { return len(s.carry) }

// MatchReader scans everything from r in blocks of blockSize (≤ 0 selects a
// default sized well above MaxLen) and emits each match once. It is the
// io.Reader convenience over Stream.
func (m *Matcher) MatchReader(r io.Reader, blockSize int, emit func(pos int64, pattern int)) error {
	if blockSize <= 0 {
		blockSize = 1 << 16
	}
	if blockSize < m.MaxLen() {
		blockSize = m.MaxLen()
	}
	s := m.Stream(emit)
	buf := make([]byte, blockSize)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if ferr := s.Feed(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return s.Close()
		}
		if err != nil {
			return err
		}
	}
}
