package pardict

import (
	"context"
	"fmt"
	"io"

	"pardict/internal/obs"
	"pardict/internal/streamcore"
)

// StreamMatcher scans an unbounded input incrementally: feed it chunks of
// any size and it emits each finalized match exactly once, with absolute
// stream offsets. A position's longest match is determined by the next
// MaxLen bytes, so the matcher holds back the trailing MaxLen−1 bytes of
// what it has seen until more input (or Close) arrives.
//
// Each byte is scanned exactly once regardless of chunking: the matcher
// resumes its automaton from the saved state at the carry boundary, so
// feeding byte-by-byte costs O(1) amortized per byte (it does not re-match
// the hold-back region on every Feed). Per-stream state is O(carry).
//
// A StreamMatcher is single-stream state; use one per stream (the underlying
// Matcher is shared and immutable). Not safe for concurrent use — for many
// concurrent streams over one dictionary, see StreamServer.
type StreamMatcher struct {
	ses    *streamcore.Session
	emit   func(pos int64, pattern int)
	closed bool
}

// Stream returns a new streaming scanner over m's dictionary. Matches are
// reported to emit as (absolute start offset, pattern index), in increasing
// offset order; emit receives only the longest pattern per position (use
// Matcher.All on a block-level Matches if the full set is needed).
func (m *Matcher) Stream(emit func(pos int64, pattern int)) *StreamMatcher {
	return &StreamMatcher{ses: m.streamCore().NewSession(), emit: emit}
}

// Feed appends chunk to the stream and emits every match that is now final.
// It may be called with chunks of any size, including empty.
func (s *StreamMatcher) Feed(chunk []byte) error {
	return s.FeedContext(context.Background(), chunk)
}

// streamScanSegment bounds the bytes scanned between cancellation checks in
// FeedContext/CloseContext: large enough that the per-check overhead
// vanishes, small enough that cancellation lands within microseconds.
const streamScanSegment = 4096

// FeedContext is Feed under a context. On cancellation it returns an error
// wrapping ErrCanceled before emitting anything or advancing the stream: the
// fed bytes are retained, so the stream stays consistent and the caller may
// resume by calling FeedContext again (an empty chunk reprocesses what is
// buffered).
func (s *StreamMatcher) FeedContext(gctx context.Context, chunk []byte) error {
	if s.closed {
		return io.ErrClosedPipe
	}
	s.ses.Buffer(chunk)
	if s.ses.Pending() <= s.ses.Hold() {
		// Nothing can finalize yet. Scan eagerly all the same — keeping the
		// automaton caught up is what makes every Feed O(chunk) — but only
		// under a live context, so a canceled feed stays the documented
		// no-op with its bytes retained.
		if gctx == nil || gctx.Err() == nil {
			s.ses.Scan(0)
		}
		return nil
	}
	if err := s.scan(gctx); err != nil {
		return err
	}
	s.ses.EmitFinal(s.emit)
	return nil
}

// scan drives the session's automaton over everything buffered, in bounded
// segments with a cancellation check between them. Scan progress is
// unobservable (nothing is emitted, Offset does not move), so a canceled call
// leaves the stream exactly as documented: bytes retained, nothing advanced.
func (s *StreamMatcher) scan(gctx context.Context) error {
	var err error
	obs.Do(gctx, func(context.Context) {
		for s.ses.Unscanned() > 0 {
			if err = streamCanceled(gctx); err != nil {
				return
			}
			s.ses.Scan(streamScanSegment)
		}
	}, "op", "stream")
	return err
}

// streamCanceled reports a dead context as the public streaming error,
// wrapping both ErrCanceled and the context's own cause.
func streamCanceled(gctx context.Context) error {
	if gctx == nil {
		return nil
	}
	if cerr := gctx.Err(); cerr != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, cerr)
	}
	return nil
}

// Close flushes the held-back tail, emitting its matches, and invalidates
// the stream.
func (s *StreamMatcher) Close() error {
	return s.CloseContext(context.Background())
}

// CloseContext is Close under a context. On cancellation the stream is NOT
// invalidated: the tail stays buffered and no matches are emitted, so the
// caller may retry CloseContext (or keep feeding).
func (s *StreamMatcher) CloseContext(gctx context.Context) error {
	if s.closed {
		return nil
	}
	if s.ses.Pending() == 0 {
		s.closed = true
		return nil
	}
	if err := streamCanceled(gctx); err != nil {
		return err
	}
	if err := s.scan(gctx); err != nil {
		return err
	}
	s.closed = true
	s.ses.Flush(s.emit)
	return nil
}

// Offset reports the absolute offset of the next unfinalized position.
func (s *StreamMatcher) Offset() int64 { return s.ses.Offset() }

// Pending reports how many bytes are currently held back awaiting
// finalization.
func (s *StreamMatcher) Pending() int { return s.ses.Pending() }

// MatchReader scans everything from r in blocks of blockSize (≤ 0 selects a
// default sized well above MaxLen) and emits each match once. It is the
// io.Reader convenience over Stream.
func (m *Matcher) MatchReader(r io.Reader, blockSize int, emit func(pos int64, pattern int)) error {
	if blockSize <= 0 {
		blockSize = 1 << 16
	}
	if blockSize < m.MaxLen() {
		blockSize = m.MaxLen()
	}
	s := m.Stream(emit)
	buf := make([]byte, blockSize)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if ferr := s.Feed(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return s.Close()
		}
		if err != nil {
			return err
		}
	}
}
