package pardict

import (
	"io"
)

// StreamMatcher scans an unbounded input incrementally: feed it chunks of
// any size and it emits each finalized match exactly once, with absolute
// stream offsets. A position's longest match is determined by the next
// MaxLen bytes, so the matcher holds back the trailing MaxLen−1 bytes of
// what it has seen until more input (or Close) arrives.
//
// A StreamMatcher is single-stream state; use one per stream (the underlying
// Matcher is shared and immutable). Not safe for concurrent use.
type StreamMatcher struct {
	m      *Matcher
	emit   func(pos int64, pattern int)
	carry  []byte
	offset int64 // absolute stream offset of carry[0]
	closed bool
}

// Stream returns a new streaming scanner over m's dictionary. Matches are
// reported to emit as (absolute start offset, pattern index), in increasing
// offset order; emit receives only the longest pattern per position (use
// Matcher.All on a block-level Matches if the full set is needed).
func (m *Matcher) Stream(emit func(pos int64, pattern int)) *StreamMatcher {
	return &StreamMatcher{m: m, emit: emit}
}

// Feed appends chunk to the stream and emits every match that is now final.
// It may be called with chunks of any size, including empty.
func (s *StreamMatcher) Feed(chunk []byte) error {
	if s.closed {
		return io.ErrClosedPipe
	}
	s.carry = append(s.carry, chunk...)
	hold := s.m.MaxLen() - 1
	if len(s.carry) <= hold {
		return nil
	}
	final := len(s.carry) - hold // positions [0, final) are finalized
	r := s.m.Match(s.carry)
	for j := 0; j < final; j++ {
		if p, ok := r.Longest(j); ok {
			s.emit(s.offset+int64(j), p)
		}
	}
	s.offset += int64(final)
	s.carry = append(s.carry[:0], s.carry[final:]...)
	return nil
}

// Close flushes the held-back tail, emitting its matches, and invalidates
// the stream.
func (s *StreamMatcher) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if len(s.carry) == 0 {
		return nil
	}
	r := s.m.Match(s.carry)
	for j := 0; j < r.Len(); j++ {
		if p, ok := r.Longest(j); ok {
			s.emit(s.offset+int64(j), p)
		}
	}
	s.offset += int64(len(s.carry))
	s.carry = nil
	return nil
}

// Offset reports the absolute offset of the next unfinalized position.
func (s *StreamMatcher) Offset() int64 { return s.offset }

// Pending reports how many bytes are currently held back awaiting
// finalization.
func (s *StreamMatcher) Pending() int { return len(s.carry) }

// MatchReader scans everything from r in blocks of blockSize (≤ 0 selects a
// default sized well above MaxLen) and emits each match once. It is the
// io.Reader convenience over Stream.
func (m *Matcher) MatchReader(r io.Reader, blockSize int, emit func(pos int64, pattern int)) error {
	if blockSize <= 0 {
		blockSize = 1 << 16
	}
	if blockSize < m.MaxLen() {
		blockSize = m.MaxLen()
	}
	s := m.Stream(emit)
	buf := make([]byte, blockSize)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if ferr := s.Feed(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return s.Close()
		}
		if err != nil {
			return err
		}
	}
}
