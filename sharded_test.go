package pardict

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func newSharded(t *testing.T, opts ...Option) *ShardedMatcher {
	t.Helper()
	m, err := NewShardedMatcher(opts...)
	if err != nil {
		t.Fatalf("NewShardedMatcher: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

func shardedInsert(t *testing.T, m *ShardedMatcher, pats ...string) {
	t.Helper()
	for _, p := range pats {
		if _, err := m.Insert([]byte(p)); err != nil {
			t.Fatalf("Insert(%q): %v", p, err)
		}
	}
}

func TestShardedMatcherBasic(t *testing.T) {
	m := newSharded(t, WithShards(4))
	shardedInsert(t, m, "he", "she", "his", "hers")
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d", m.Shards())
	}
	if m.Len() != 4 || m.Size() != 12 || m.MaxLen() != 4 {
		t.Fatalf("Len/Size/MaxLen = %d/%d/%d", m.Len(), m.Size(), m.MaxLen())
	}
	r := m.Match([]byte("ushers"))
	if r.Len() != 6 {
		t.Fatalf("match len %d", r.Len())
	}
	// ushers: she@1, he@2+hers@2.
	if l := r.MatchLen(1); l != 3 {
		t.Fatalf("MatchLen(1) = %d, want 3 (she)", l)
	}
	if l := r.MatchLen(2); l != 4 {
		t.Fatalf("MatchLen(2) = %d, want 4 (hers)", l)
	}
	if _, ok := r.Longest(0); ok {
		t.Fatalf("unexpected match at 0")
	}
	if id, ok := r.Longest(2); !ok || id < 0 {
		t.Fatalf("Longest(2) = %v %v", id, ok)
	}
	if c := r.Count(); c != 2 {
		t.Fatalf("Count = %d, want 2", c)
	}
	hits := r.AllAt(2, nil)
	if len(hits) != 2 || string(hits[0].Pattern) != "hers" || string(hits[1].Pattern) != "he" {
		t.Fatalf("AllAt(2) = %v", hits)
	}
	if st := r.Stats(); st.Work <= 0 || st.Depth <= 0 {
		t.Fatalf("stats not aggregated: %+v", st)
	}
	if ss := m.SchedulerStats(); ss.Phases == 0 {
		t.Fatalf("scheduler stats empty: %+v", ss)
	}

	if _, err := m.Insert([]byte("she")); !errors.Is(err, ErrDuplicatePattern) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := m.Delete([]byte("nope")); !errors.Is(err, ErrPatternNotFound) {
		t.Fatalf("missing delete: %v", err)
	}
	if err := m.Delete([]byte("she")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if m.Has([]byte("she")) || !m.Has([]byte("he")) {
		t.Fatalf("Has wrong after delete")
	}
	r = m.Match([]byte("ushers"))
	if l := r.MatchLen(1); l != 0 {
		t.Fatalf("she still matches after delete: len %d", l)
	}
	if l := r.MatchLen(2); l != 4 {
		t.Fatalf("hers lost: len %d", l)
	}
}

func TestShardedMatcherStatsAndReconcile(t *testing.T) {
	m := newSharded(t, WithShards(2))
	shardedInsert(t, m, "alpha", "beta", "gamma")
	st := m.Stats()
	if st.Shards != 2 || st.Patterns != 3 || st.PendingOps != 3 {
		t.Fatalf("stats before reconcile: %+v", st)
	}
	m.Reconcile()
	st = m.Stats()
	if st.PendingOps != 0 || st.Rebuilds == 0 || st.SnapshotSwaps == 0 {
		t.Fatalf("stats after reconcile: %+v", st)
	}
	if st.ReconcileWork == 0 {
		t.Fatalf("reconcile work not charged: %+v", st)
	}
	// Scan cost must NOT include the background rebuild work.
	r := m.Match([]byte("xxalphaxx"))
	if r.Stats().Work >= st.ReconcileWork+1000000 {
		t.Fatalf("scan work looks polluted: %+v vs %+v", r.Stats(), st)
	}
}

func TestShardedDefaultShards(t *testing.T) {
	m := newSharded(t)
	if m.Shards() < 1 || m.Shards() > 32 {
		t.Fatalf("default shards = %d", m.Shards())
	}
}

func TestShardedClose(t *testing.T) {
	m, err := NewShardedMatcher(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	shardedInsert(t, m, "abc")
	m.Close()
	if _, err := m.Insert([]byte("x")); !errors.Is(err, ErrMatcherClosed) {
		t.Fatalf("insert after close: %v", err)
	}
	if err := m.Delete([]byte("abc")); !errors.Is(err, ErrMatcherClosed) {
		t.Fatalf("delete after close: %v", err)
	}
	if r := m.Match([]byte("xabcx")); r.MatchLen(1) != 3 {
		t.Fatalf("scan after close broken")
	}
}

func TestShardedReload(t *testing.T) {
	m := newSharded(t, WithShards(3))
	shardedInsert(t, m, "old")
	if err := m.Reload([][]byte{[]byte("new1"), []byte("newer")}); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if m.Has([]byte("old")) {
		t.Fatalf("old pattern survived Reload")
	}
	if m.Len() != 2 {
		t.Fatalf("Len after Reload = %d", m.Len())
	}
	r := m.Match([]byte("xnew1newerx"))
	if r.MatchLen(1) != 4 || r.MatchLen(5) != 5 {
		t.Fatalf("reloaded dictionary mismatch")
	}
	// A failing Reload leaves the dictionary untouched.
	if err := m.Reload([][]byte{[]byte("dup"), []byte("dup")}); !errors.Is(err, ErrDuplicatePattern) {
		t.Fatalf("dup Reload: %v", err)
	}
	if m.Len() != 2 || !m.Has([]byte("new1")) {
		t.Fatalf("failed Reload mutated state")
	}
}

func TestShardedReloadSaved(t *testing.T) {
	src, err := NewMatcher([][]byte{[]byte("he"), []byte("she"), []byte("hers")})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m := newSharded(t, WithShards(2))
	shardedInsert(t, m, "stale")
	if err := m.ReloadSaved(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReloadSaved: %v", err)
	}
	if m.Len() != 3 || m.Has([]byte("stale")) {
		t.Fatalf("ReloadSaved state wrong: len=%d", m.Len())
	}
	if r := m.Match([]byte("ushers")); r.MatchLen(2) != 4 {
		t.Fatalf("reloaded match wrong")
	}

	// Corrupt body: fail closed, old dictionary intact.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/2] ^= 0xff
	if err := m.ReloadSaved(bytes.NewReader(bad)); err == nil {
		t.Fatalf("corrupt ReloadSaved succeeded")
	}
	if m.Len() != 3 {
		t.Fatalf("corrupt ReloadSaved mutated state")
	}
	// Truncated body: same.
	if err := m.ReloadSaved(bytes.NewReader(buf.Bytes()[:buf.Len()-7])); err == nil {
		t.Fatalf("truncated ReloadSaved succeeded")
	}
	if m.Len() != 3 {
		t.Fatalf("truncated ReloadSaved mutated state")
	}
}

func TestShardedMatchContextCancel(t *testing.T) {
	m := newSharded(t, WithShards(2))
	shardedInsert(t, m, "abc", "abcd")
	gctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.MatchContext(gctx, bytes.Repeat([]byte("abcd"), 4096)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled match: %v", err)
	}
	if _, err := m.MatchBatch(gctx, [][]byte{bytes.Repeat([]byte("abcd"), 4096)}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled batch: %v", err)
	}
}

func TestShardedMatchBatch(t *testing.T) {
	m := newSharded(t, WithShards(4))
	shardedInsert(t, m, "he", "she", "hers")
	texts := make([][]byte, 9)
	for i := range texts {
		texts[i] = []byte(fmt.Sprintf("u%dshers", i))
	}
	out, err := m.MatchBatch(context.Background(), texts)
	if err != nil {
		t.Fatalf("MatchBatch: %v", err)
	}
	for i, r := range out {
		if r == nil || r.MatchLen(2) != 3 {
			t.Fatalf("batch text %d wrong: %+v", i, r)
		}
	}
	if out2, err := m.MatchBatch(context.Background(), nil); err != nil || len(out2) != 0 {
		t.Fatalf("empty batch: %v %v", out2, err)
	}
}

// dynOracle is the mutex-guarded DynamicMatcher oracle the differential test
// compares against: Insert/Delete serialize under the write lock, Match runs
// under the read lock, and id→pattern is tracked for length recovery.
type dynOracle struct {
	mu   sync.RWMutex
	d    *DynamicMatcher
	pats map[PatternID][]byte
}

func newDynOracle(t *testing.T, opts ...Option) *dynOracle {
	t.Helper()
	d, err := NewDynamicMatcher(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &dynOracle{d: d, pats: map[PatternID][]byte{}}
}

// randPattern draws a pattern over the first sigma letters.
func randPattern(rng *rand.Rand, sigma int) []byte {
	n := 1 + rng.Intn(7)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(sigma))
	}
	return b
}

func randText(rng *rand.Rand, sigma, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(sigma))
	}
	return b
}

// TestShardedDifferential drives ≥4 writers and ≥8 readers against the
// sharded matcher and the DynamicMatcher oracle, for σ ∈ {2, 256}. Writers
// apply each mutation to both structures under the oracle's write lock (so
// both observe the same serialized write history); readers scan both and
// require identical per-position longest-match lengths — exact equality for
// the write-set the scan observed, because the oracle lock makes each
// reader's (sharded scan, oracle scan) pair see the same prefix of writes.
func TestShardedDifferential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sigma int
		opts  []Option
	}{
		{"sigma2", 2, []Option{WithAlphabet([]byte("ab"))}},
		{"sigma256", 3, nil}, // raw-byte (σ=256) encoding; patterns over 3 letters keep matches plentiful
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := newSharded(t, append([]Option{WithShards(4)}, tc.opts...)...)
			m.set.SetRebuildThresholds(16, 24) // keep rebuilds frequent
			o := newDynOracle(t, tc.opts...)

			const (
				writers  = 4
				readers  = 8
				duration = 600 * time.Millisecond
			)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errc := make(chan error, writers+readers)

			// Writers: mutate both structures atomically w.r.t. readers.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						p := randPattern(rng, tc.sigma)
						o.mu.Lock()
						if rng.Intn(2) == 0 {
							_, errS := m.Insert(p)
							idO, errO := o.d.Insert(p)
							if (errS == nil) != (errO == nil) {
								o.mu.Unlock()
								errc <- fmt.Errorf("insert %q: sharded=%v oracle=%v", p, errS, errO)
								return
							}
							if errO == nil {
								o.pats[idO] = append([]byte(nil), p...)
							}
						} else {
							errS := m.Delete(p)
							errO := o.d.Delete(p)
							if (errS == nil) != (errO == nil) {
								o.mu.Unlock()
								errc <- fmt.Errorf("delete %q: sharded=%v oracle=%v", p, errS, errO)
								return
							}
						}
						o.mu.Unlock()
					}
				}(int64(w) + 100)
			}

			// Readers: under the oracle read lock both scans see the same
			// completed write-set; results must agree exactly.
			for rd := 0; rd < readers; rd++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						text := randText(rng, tc.sigma, 64+rng.Intn(128))
						o.mu.RLock()
						sr := m.Match(text)
						dr := o.d.Match(text)
						o.mu.RUnlock()
						for i := 0; i < sr.Len(); i++ {
							want := 0
							if id, ok := dr.Longest(i); ok {
								o.mu.RLock()
								want = len(o.pats[id])
								o.mu.RUnlock()
							}
							if got := sr.MatchLen(i); got != want {
								errc <- fmt.Errorf("text %q pos %d: sharded len %d, oracle len %d", text, i, got, want)
								return
							}
						}
					}
				}(int64(rd) + 900)
			}

			time.Sleep(duration)
			close(stop)
			wg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			st := m.Stats()
			if st.Rebuilds == 0 {
				t.Logf("note: no background rebuild triggered (load too light?): %+v", st)
			}
		})
	}
}

// TestShardedChaosInvariants hammers the sharded matcher with fully
// unsynchronized concurrent scans and mutations (the readers take no lock at
// all), checking structural invariants on every result: a reported match must
// be a pattern the matcher was actually given, occurring at that exact text
// position, and a never-mutated core set must always be found. Run under
// -race this also proves the RCU read side is data-race free.
func TestShardedChaosInvariants(t *testing.T) {
	m := newSharded(t, WithShards(4))
	m.set.SetRebuildThresholds(16, 24)
	core := []string{"aba", "bab", "aabb"}
	shardedInsert(t, m, core...)
	m.Reconcile()

	var ever sync.Map // pattern content ever handed to Insert (recorded first)
	for _, p := range core {
		ever.Store(p, true)
	}

	const (
		writers  = 4
		readers  = 8
		duration = 500 * time.Millisecond
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := append(randPattern(rng, 2), byte('0'+rng.Intn(8))) // never collides with core
				ever.Store(string(p), true)                             // record BEFORE the insert publishes it
				if _, err := m.Insert(p); err == nil {
					if rng.Intn(2) == 0 {
						_ = m.Delete(p)
					}
				}
			}
		}(int64(w) + 7)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				text := randText(rng, 2, 48+rng.Intn(64))
				r := m.Match(text)
				for i := 0; i < r.Len(); i++ {
					l := r.MatchLen(i)
					if l == 0 {
						continue
					}
					if _, ok := r.Longest(i); !ok {
						errc <- fmt.Errorf("len %d but no id at %d", l, i)
						return
					}
					if i+l > len(text) {
						errc <- fmt.Errorf("match overruns text: len %d at %d of %d", l, i, len(text))
						return
					}
					if _, known := ever.Load(string(text[i : i+l])); !known {
						errc <- fmt.Errorf("matched %q at %d: never an inserted pattern", text[i:i+l], i)
						return
					}
				}
				// The untouched core set must always be found.
				probe := []byte("xxabaxx")
				if pr := m.Match(probe); pr.MatchLen(2) < 3 {
					errc <- fmt.Errorf("core pattern lost: MatchLen=%d", pr.MatchLen(2))
					return
				}
			}
		}(int64(rd) + 71)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestShardedStallBoundedLatency artificially stalls a background rebuild and
// asserts scans stay fast: the RCU read side must never wait for the
// reconciler.
func TestShardedStallBoundedLatency(t *testing.T) {
	m := newSharded(t, WithShards(2))
	m.set.SetRebuildThresholds(1, 8)
	shardedInsert(t, m, "he", "she", "hers")
	m.Reconcile()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	m.set.SetGate(func() {
		once.Do(func() { close(entered) })
		<-release
	})
	defer close(release)

	// Trip the background trigger on both shards.
	for i := 0; i < 32; i++ {
		shardedInsert(t, m, fmt.Sprintf("stall%03d", i))
	}
	<-entered // the reconciler is now wedged mid-rebuild

	text := []byte("usherstall000stall031xx")
	for i := 0; i < 50; i++ {
		start := time.Now()
		r := m.Match(text)
		if d := time.Since(start); d > time.Second {
			t.Fatalf("scan %d took %v during stalled rebuild", i, d)
		}
		if r.MatchLen(1) != 3 {
			t.Fatalf("scan %d wrong during stalled rebuild", i)
		}
		// Writes must also stay non-blocking (log appends).
		p := []byte(fmt.Sprintf("w%04d", i))
		start = time.Now()
		if _, err := m.Insert(p); err != nil {
			t.Fatalf("insert during stall: %v", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("insert %d took %v during stalled rebuild", i, d)
		}
	}
	if got := m.Stats().PinnedSnapshots; got != 0 {
		t.Fatalf("pinned snapshots leaked: %d", got)
	}
}
