// Benchmarks mirroring the experiments E1–E10 of EXPERIMENTS.md: one bench
// family per claim of the paper, over the same workloads cmd/benchtab
// sweeps. Run with:
//
//	go test -bench=. -benchmem
package pardict

import (
	"bytes"
	"fmt"
	"testing"

	"pardict/internal/ahocorasick"
	"pardict/internal/core"
	"pardict/internal/dict2d"
	"pardict/internal/dict3d"
	"pardict/internal/dynamic"
	"pardict/internal/multimatch"
	"pardict/internal/pram"
	"pardict/internal/sabase"
	"pardict/internal/smallalpha"
	"pardict/internal/workload"
)

const benchN = 1 << 18

// E1 — Theorem 1/3: text matching at growing m (work Θ(n·log m)).
func BenchmarkE1StaticTextWork(b *testing.B) {
	for _, m := range []int{16, 256, 4096} {
		np := max(2, (1<<14)/m)
		pats := workload.Dictionary(1, np, m/2, m, 8)
		text := workload.PlantedText(2, benchN, 8, pats, 20)
		c := pram.New(0)
		d, err := core.Preprocess(c, pats)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.SetBytes(benchN)
			for i := 0; i < b.N; i++ {
				d.Match(c, text)
			}
		})
	}
}

// E2 — Theorem 3: preprocessing at growing M (work Θ(M)).
func BenchmarkE2PreprocWork(b *testing.B) {
	for _, logM := range []int{12, 16, 18} {
		m := 64
		pats := workload.Dictionary(3, (1<<logM)/m*2, m/2, m, 8)
		total := 0
		for _, p := range pats {
			total += len(p)
		}
		b.Run(fmt.Sprintf("M=%d", total), func(b *testing.B) {
			b.SetBytes(int64(total))
			for i := 0; i < b.N; i++ {
				c := pram.New(0)
				if _, err := core.Preprocess(c, pats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3 — M-independence of matching, vs the suffix-array baseline.
func BenchmarkE3MIndependence(b *testing.B) {
	m := 32
	text := workload.Text(6, benchN, 16)
	for _, logM := range []int{10, 14, 18} {
		pats := workload.Dictionary(5, (1<<logM)/m, m/2, m, 16)
		c := pram.New(0)
		d, err := core.Preprocess(c, pats)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ours/logM=%d", logM), func(b *testing.B) {
			b.SetBytes(benchN)
			for i := 0; i < b.N; i++ {
				d.Match(c, text)
			}
		})
		sa := sabase.New(pats)
		b.Run(fmt.Sprintf("suffixarray/logM=%d", logM), func(b *testing.B) {
			b.SetBytes(benchN)
			for i := 0; i < b.N; i++ {
				sa.LongestMatch(text)
			}
		})
	}
}

// E4 — Theorem 4: small-alphabet engine across collapse parameters.
func BenchmarkE4SmallAlpha(b *testing.B) {
	const m, sigma = 1024, 4
	pats := workload.Dictionary(7, 64, m/2, m, sigma)
	text := workload.PlantedText(8, benchN, sigma, pats, 10)
	for _, l := range []int{1, 2, 4} {
		c := pram.New(0)
		sm, err := smallalpha.New(c, pats, sigma, l)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			b.SetBytes(benchN)
			for i := 0; i < b.N; i++ {
				sm.Match(c, text)
			}
		})
	}
}

// E5 — Theorem 6: 2-D dictionary matching at growing pattern side.
func BenchmarkE5Dict2D(b *testing.B) {
	const side = 256
	text := workload.Grid(10, side, side, 4, 0.3)
	for _, m := range []int{4, 16, 32} {
		pats := workload.SquarePatterns(9, 8, m, 4)
		c := pram.New(0)
		d, err := dict2d.Preprocess(c, pats)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.SetBytes(side * side)
			for i := 0; i < b.N; i++ {
				if _, err := d.Match(c, text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E6 — Theorem 8: dynamic insert cost at growing M.
func BenchmarkE6PartlyDynamic(b *testing.B) {
	const lam, sigma = 64, 8
	for _, preload := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("insert/M=%d", preload*lam), func(b *testing.B) {
			c := pram.New(0)
			d := dynamic.New()
			seed := int64(0)
			for d.LiveCount() < preload {
				_, _ = d.Insert(c, workload.Text(seed, lam, sigma))
				seed++
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := workload.Text(seed, lam, sigma)
				seed++
				if _, err := d.Insert(c, p); err != nil {
					continue
				}
				b.StopTimer()
				_ = d.Delete(c, p) // keep M steady
				b.StartTimer()
			}
		})
	}
	b.Run("match", func(b *testing.B) {
		c := pram.New(0)
		d := dynamic.New()
		for seed := int64(0); d.LiveCount() < 1<<10; seed++ {
			_, _ = d.Insert(c, workload.Text(seed, lam, sigma))
		}
		text := workload.Text(999, benchN, sigma)
		b.SetBytes(benchN)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Match(c, text)
		}
	})
}

// E7 — Theorem 10: fully dynamic churn (insert+delete pairs, incl. rebuilds).
func BenchmarkE7FullyDynamic(b *testing.B) {
	const lam, sigma = 32, 8
	c := pram.New(0)
	d := dynamic.New()
	var pats [][]int32
	for seed := int64(0); d.LiveCount() < 1<<11; seed++ {
		p := workload.Text(seed, lam, sigma)
		if _, err := d.Insert(c, p); err == nil {
			pats = append(pats, p)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pats[i%len(pats)]
		if err := d.Delete(c, p); err == nil {
			_, _ = d.Insert(c, p)
		}
	}
}

// E8 — Theorem 11: equal-length matching stays flat as m grows; the general
// engine grows as log m; Aho–Corasick is the sequential yardstick.
func BenchmarkE8EqualLength(b *testing.B) {
	const sigma = 4
	for _, m := range []int{8, 128, 2048} {
		pats := workload.EqualLengthDictionary(11, 64, m, sigma)
		text := workload.PlantedText(12, benchN, sigma, pats, 5)
		c := pram.New(0)
		mm, err := multimatch.New(c, pats)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("equal/m=%d", m), func(b *testing.B) {
			b.SetBytes(benchN)
			for i := 0; i < b.N; i++ {
				mm.Match(c, text)
			}
		})
		g, err := core.Preprocess(pram.New(0), pats)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("general/m=%d", m), func(b *testing.B) {
			b.SetBytes(benchN)
			for i := 0; i < b.N; i++ {
				g.Match(c, text)
			}
		})
	}
}

// E9 — wall-clock speedup vs pool width, with Aho–Corasick for reference.
func BenchmarkE9Speedup(b *testing.B) {
	m := 64
	pats := workload.Dictionary(13, 256, m/2, m, 16)
	text := workload.PlantedText(14, benchN, 16, pats, 10)
	d, err := core.Preprocess(pram.New(0), pats)
	if err != nil {
		b.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("procs=%d", procs)
		if procs == 0 {
			name = "procs=max"
		}
		c := pram.New(procs)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchN)
			for i := 0; i < b.N; i++ {
				d.Match(c, text)
			}
		})
	}
	ac, err := ahocorasick.New(pats)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ahocorasick", func(b *testing.B) {
		b.SetBytes(benchN)
		for i := 0; i < b.N; i++ {
			ac.LongestMatchStarting(text)
		}
	})
}

// E10 — all-matches output expansion on nested dictionaries (output-bound).
func BenchmarkE10AllMatches(b *testing.B) {
	for _, depth := range []int{4, 64} {
		pats := workload.NestedDictionary(depth)
		text := make([]int32, 1<<16)
		c := pram.New(0)
		d, err := core.Preprocess(c, pats)
		if err != nil {
			b.Fatal(err)
		}
		r := d.Match(c, text)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var buf []int32
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for j := range text {
					buf = d.AllMatches(r, j, buf[:0])
					total += len(buf)
				}
			}
			b.ReportMetric(float64(total), "matches")
		})
	}
}

// Public-API benchmark: the end-to-end path a downstream user hits.
func BenchmarkPublicAPI(b *testing.B) {
	pats := workload.Dictionary(21, 512, 4, 64, 26)
	bp := make([][]byte, len(pats))
	for i, p := range pats {
		for j := range p {
			p[j] += 'a'
		}
		bp[i] = workload.Bytes(p)
	}
	m, err := NewMatcher(bp)
	if err != nil {
		b.Fatal(err)
	}
	textSyms := workload.PlantedText(22, benchN, 26, pats, 10)
	text := workload.Bytes(textSyms)
	b.SetBytes(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(text)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E5b — the d = 3 engine at growing pattern side.
func BenchmarkE5Dict3D(b *testing.B) {
	const side = 48
	text := cube3(100, side, 3)
	for _, m := range []int{2, 4, 8} {
		pats := make([][][][]int32, 4)
		for i := range pats {
			pats[i] = cube3(int64(m*10+i), m, 3)
		}
		c := pram.New(0)
		d, err := dict3d.Preprocess(c, pats)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.SetBytes(side * side * side)
			for i := 0; i < b.N; i++ {
				if _, err := d.Match(c, text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func cube3(seed int64, side, sigma int) [][][]int32 {
	flat := workload.Text(seed, side*side*side, sigma)
	out := make([][][]int32, side)
	for z := 0; z < side; z++ {
		out[z] = make([][]int32, side)
		for y := 0; y < side; y++ {
			out[z][y] = flat[(z*side+y)*side : (z*side+y+1)*side]
		}
	}
	return out
}

// Streaming path: end-to-end chunked scanning throughput.
func BenchmarkStream(b *testing.B) {
	ip := workload.Dictionary(31, 128, 4, 32, 16)
	pats := make([][]byte, len(ip))
	for i, p := range ip {
		for j := range p {
			p[j] += 'a'
		}
		pats[i] = workload.Bytes(p)
	}
	m, err := NewMatcher(pats, WithEngine(EngineGeneral))
	if err != nil {
		b.Fatal(err)
	}
	it := workload.PlantedText(32, benchN, 16, ip, 10)
	text := workload.Bytes(it)
	b.SetBytes(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Stream(func(int64, int) {})
		for at := 0; at < len(text); at += 1 << 14 {
			end := at + 1<<14
			if end > len(text) {
				end = len(text)
			}
			if err := s.Feed(text[at:end]); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// Serialization round-trip throughput (compiled dictionary shipping).
func BenchmarkSaveLoad(b *testing.B) {
	ip := workload.Dictionary(33, 1024, 4, 64, 16)
	pats := make([][]byte, len(ip))
	for i, p := range ip {
		for j := range p {
			p[j] += 'a'
		}
		pats[i] = workload.Bytes(p)
	}
	m, err := NewMatcher(pats, WithEngine(EngineGeneral))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := m.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := LoadMatcher(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
